"""The differential restart-equivalence harness.

The check, per (app, source cell, destination cell) triple:

1. **golden run** — the app runs to completion under MANA, uncheckpointed,
   on a fixed reference cell; its final-state fingerprint and p2p traffic
   totals are the golden answer (memoized per process);
2. **fuzzed checkpoint** — the same app runs on the *source* cell and a
   coordinated checkpoint is cut at a seeded-random virtual time (a
   uniform fraction of the source run's makespan, drawn from a
   :class:`~repro.simtime.rng.RngStreams` stream named after the triple,
   so every cycle is reproducible from its seed alone);
3. **cross-cell restart** — the checkpoint restarts on the *destination*
   cell — a different MPI implementation, fabric and/or ranks-per-node
   layout — and runs to completion;
4. **oracles** — the restarted final state must be bit-identical to the
   golden fingerprint, and the merged source+restart metrics must conserve
   p2p messages and bytes and match the golden traffic exactly.

:func:`run_conformance` sweeps the full tier matrix through
:func:`~repro.harness.parallel.run_cells` — every cycle is one picklable
:class:`~repro.harness.parallel.SweepCell`, so ``jobs=N`` fans the matrix
over a process pool with results identical to ``jobs=1``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.conformance.matrix import (
    ConfigCell,
    cluster_for,
    matrix_for,
    source_cells,
)
from repro.conformance.oracles import (
    ConservationTotals,
    Divergence,
    check_conservation,
    check_golden_state,
    check_handle_ledger,
    check_replay_accounting,
    check_replay_consistency,
    conservation_totals,
    state_fingerprint,
)
from repro.harness.parallel import SweepCell, memo, run_cells
from repro.simtime.rng import RngStreams

#: the cell whose uncheckpointed run defines the golden state (the paper's
#: home configuration: Cray MPICH on Aries)
REF_CELL = ConfigCell(mpi="craympich", fabric="aries", ranks_per_node=2)

#: default app mix: a p2p-dense workload, a collective-heavy one, a
#: rank-count-constrained one (LULESH only runs on cube rank counts — the
#: non-power-of-two shape the matrix layouts must survive), and a
#: handle-churn one (commchurn creates/frees communicators, datatypes and
#: groups every step — the adversarial workload for the record-replay path
#: and the log compactor, docs/record_replay.md)
DEFAULT_APPS = ("gromacs", "hpcg", "lulesh", "commchurn")

#: checkpoints are fuzzed into this fraction band of the source makespan —
#: never so early that no state exists, never after the app finished
CKPT_FRACTION = (0.15, 0.85)


def effective_ranks(app: str, n_ranks: int) -> int:
    """Resolve the requested rank count through the app's own constraint.

    ``AppSpec.valid_ranks`` rounds *down* (LULESH: largest cube ≤ n), which
    can collapse to a single rank — useless for a harness whose whole point
    is cross-rank protocol state.  Grow the request until at least two
    ranks survive the constraint.
    """
    from repro.apps import get_app

    spec = get_app(app)
    want = max(n_ranks, 2)
    n = spec.valid_ranks(want)
    while n < 2:
        want *= 2
        n = spec.valid_ranks(want)
    return n


def checkpoint_fraction(app: str, src: ConfigCell, seed: int, k: int,
                        hop: int = 0) -> float:
    """The fuzzed checkpoint time as a fraction of the source makespan.

    Drawn from a named rng stream keyed on the whole (app, source, k)
    identity, so the value depends only on ``seed`` — never on how many
    cycles ran before this one, or in which process.  ``hop`` keys the
    *second* cut of a chained cycle (checkpoint → restart → checkpoint
    again); hop 0 keeps the historical stream names.
    """
    lo, hi = CKPT_FRACTION
    name = f"conformance.ckpt/{app}/{src.label}/k{k}"
    if hop:
        name += f"/hop{hop}"
    stream = RngStreams(seed).stream(name)
    return float(stream.uniform(lo, hi))


# ------------------------------------------------------------- golden runs

@dataclass(frozen=True)
class GoldenResult:
    """One uncheckpointed run's answer: state, traffic, and duration."""

    fingerprint: str
    totals: ConservationTotals
    makespan: float


def _app_pieces(app: str, n_steps: int):
    from repro.apps import get_app

    spec = get_app(app)
    return spec, spec.default_config.scaled(n_steps=n_steps)


def golden_run(app: str, cell: ConfigCell = REF_CELL, n_ranks: int = 4,
               n_steps: int = 4) -> GoldenResult:
    """Run ``app`` to completion under MANA with no checkpoint (memoized)."""
    key = ("conformance-golden", app, cell.as_tuple(), n_ranks, n_steps)

    def compute():
        from repro.harness.experiments import _launch_mana_app

        n_eff = effective_ranks(app, n_ranks)
        spec, cfg = _app_pieces(app, n_steps)
        cluster = cluster_for(cell, n_eff)
        job = _launch_mana_app(cluster, spec, cfg, n_eff,
                               cell.ranks_per_node)
        makespan = job.run_to_completion()
        return GoldenResult(
            fingerprint=state_fingerprint(job.states),
            totals=conservation_totals(job.engine.metrics),
            makespan=makespan,
        )

    return memo(key, compute)


def _source_checkpoint(app: str, src: ConfigCell, n_ranks: int, n_steps: int,
                       seed: int, k: int, protocol: str = "alg2",
                       shards: int = 1, compact: bool = False):
    """(checkpoint set, source-engine totals, ckpt time), memoized.

    The checkpoint set is only ever *read* by restarts (the property fig9's
    triple restart already relies on), so one source simulation feeds every
    destination cell of the matrix within a process.  The fuzzed cut time
    comes from a protocol-independent rng stream, so the alg2 and topo
    variants of one cycle checkpoint at the same virtual instant — the
    ideal differential.  ``shards`` > 1 runs the source job on a sharded
    engine (merged mode) — the engine must be bit-identical, so the shard
    axis gets its own memo slot precisely to *not* share the sequential
    run's images.  ``compact`` keys its own slot too: a compacted and a
    full image of the same instant are *different artifacts*, and the
    compaction differential depends on restarting both.
    """
    key = ("conformance-src", app, src.as_tuple(), n_ranks, n_steps, seed, k,
           protocol, shards, compact)

    def compute():
        from repro.harness.experiments import _launch_mana_app

        t_ckpt = (checkpoint_fraction(app, src, seed, k)
                  * golden_run(app, src, n_ranks, n_steps).makespan)
        n_eff = effective_ranks(app, n_ranks)
        spec, cfg = _app_pieces(app, n_steps)
        cluster = cluster_for(src, n_eff)
        job = _launch_mana_app(cluster, spec, cfg, n_eff,
                               src.ranks_per_node, protocol=protocol,
                               shards=shards if shards > 1 else None,
                               compact=compact)
        ckpt, _report = job.checkpoint_at(t_ckpt)
        return ckpt, conservation_totals(job.engine.metrics), t_ckpt

    return memo(key, compute)


# -------------------------------------------------------------- one cycle

@dataclass(frozen=True)
class CycleResult:
    """Outcome of one differential cycle (picklable across pool workers)."""

    app: str
    src: tuple           # ConfigCell.as_tuple()
    dst: tuple
    seed: int
    k: int
    ckpt_time: float
    divergences: tuple   # of Divergence
    #: which checkpoint protocol drove the cycle ("alternate" = chained
    #: hops cut under alg2 → topo in turn)
    protocol: str = "alg2"
    #: the restarted run's final-state fingerprint (cross-protocol check)
    fingerprint: str = ""
    #: how many event shards the cycle's engines ran on (1 = sequential)
    shards: int = 1
    #: whether the cycle's checkpoints compacted the record-replay log
    compact: bool = False
    #: entries the first restart actually replayed (O(live) when compacted)
    replayed: int = 0

    @property
    def ok(self) -> bool:
        """True when every oracle passed."""
        return not self.divergences

    @property
    def pair(self) -> str:
        """``src-label->dst-label`` — the ``--only`` filter syntax."""
        src = ConfigCell.from_tuple(self.src)
        dst = ConfigCell.from_tuple(self.dst)
        return f"{src.label}->{dst.label}"

    def repro(self, tier: str = "quick") -> str:
        """A shell one-liner that re-runs exactly this cycle."""
        line = (f"python -m repro conformance --{tier} --seed {self.seed} "
                f"--apps {self.app} --protocol {self.protocol} "
                f"--only '{self.pair}'")
        if self.shards != 1:
            line += f" --shards {self.shards}"
        if self.compact:
            line += " --compact on"
        return line


def _hop_protocols(protocol: str) -> tuple[str, str, str]:
    """Per-hop checkpoint protocols for (first cut, second cut, final run).

    ``"alternate"`` drives a chained cycle's hops under *different*
    engines — alg2 cuts the source, topo cuts the restarted job, alg2 hosts
    the final run — so the oracles prove a checkpoint taken by one protocol
    restores cleanly under the other, in both directions.  Any other value
    is used uniformly (the historical behaviour).
    """
    if protocol == "alternate":
        return ("alg2", "topo", "alg2")
    return (protocol, protocol, protocol)


def differential_cycle(app: str, src: ConfigCell, dst: ConfigCell,
                       n_ranks: int = 4, n_steps: int = 4,
                       seed: int = 0, k: int = 0,
                       chain: bool = False,
                       protocol: str = "alg2",
                       shards: int = 1,
                       compact: bool = False) -> CycleResult:
    """Run one golden/checkpoint/restart/oracle cycle and report it.

    With ``chain=True`` the cycle becomes a two-hop round trip: checkpoint
    on ``src``, restart on ``dst``, cut a *second* fuzzed checkpoint of the
    restarted job, restart that image back on ``src``, and only then apply
    the oracles — the state must survive two migrations and the traffic
    totals of all three segments must still conserve against the golden.

    ``protocol`` selects the checkpoint protocol engine for every cut in
    the cycle (``"alternate"``: alg2 → topo → alg2 across a chain's hops);
    the golden runs are checkpoint-free and therefore shared.  ``shards``
    > 1 runs the source and restart jobs on sharded engines — the golden
    stays sequential, so every oracle doubles as a sequential-vs-sharded
    differential.

    ``compact=True`` compacts the record-replay log in every checkpoint of
    the cycle (docs/record_replay.md); on top of the state/conservation
    oracles, each image is screened by the replay-consistency oracle (would
    the compacted logs deadlock at restart?) and the restart by the
    replay-accounting and handle-ledger oracles.
    """
    from repro.mana.job import restart

    proto_cut1, proto_cut2, proto_final = _hop_protocols(protocol)
    job_shards = shards if shards > 1 else None
    ref = golden_run(app, REF_CELL, n_ranks, n_steps)
    divergences: list[Divergence] = []

    # The uncheckpointed runs themselves must agree across cells — if the
    # app's answer already depends on the implementation or fabric, every
    # restart oracle downstream would be chasing a phantom.
    src_golden = golden_run(app, src, n_ranks, n_steps)
    if src_golden.fingerprint != ref.fingerprint:
        divergences.append(Divergence(
            "golden_equivalence", ref.fingerprint, src_golden.fingerprint,
            f"uncheckpointed runs differ between {REF_CELL.label} "
            f"and {src.label}",
        ))

    ckpt, src_totals, t_ckpt = _source_checkpoint(
        app, src, n_ranks, n_steps, seed, k, protocol=proto_cut1,
        shards=shards, compact=compact,
    )
    divergences.extend(check_replay_consistency(ckpt))
    n_eff = effective_ranks(app, n_ranks)
    spec, cfg = _app_pieces(app, n_steps)
    job2 = restart(
        ckpt, cluster_for(dst, n_eff), spec.build(cfg),
        mpi=dst.mpi, ranks_per_node=dst.ranks_per_node, protocol=proto_cut2,
        shards=job_shards, compact=compact,
    )

    mid_totals = None
    ckpt2 = None
    final_job = job2
    if chain:
        # drive past the restart read/replay so the second cut lands on a
        # live application, then fuzz it into the remaining-work band
        while not job2.resumed.done:
            if not job2.engine.step():
                raise RuntimeError("restarted job never went live")
        remaining = max(src_golden.makespan - t_ckpt, 1e-9)
        frac2 = checkpoint_fraction(app, src, seed, k, hop=1)
        t2 = job2.engine.now + frac2 * remaining
        job2.run_until(t2)
        if not job2.finished.done:
            ckpt2, _rep2 = job2.checkpoint()
            divergences.extend(check_replay_consistency(ckpt2))
            mid_totals = conservation_totals(job2.engine.metrics)
            final_job = restart(
                ckpt2, cluster_for(src, n_eff), spec.build(cfg),
                mpi=src.mpi, ranks_per_node=src.ranks_per_node,
                protocol=proto_final, shards=job_shards, compact=compact,
            )
        # else: the dst cell outran the fuzzed window — the cycle
        # degenerates to a single hop, which is still a full oracle check

    final_job.run_to_completion()

    final_fp = state_fingerprint(final_job.states)
    state_div = check_golden_state(ref.fingerprint, final_job.states)
    if state_div is not None:
        divergences.append(state_div)
    merged = src_totals + conservation_totals(final_job.engine.metrics)
    if mid_totals is not None:
        merged = merged + mid_totals
    divergences.extend(check_conservation(merged, golden=ref.totals))
    divergences.extend(check_replay_accounting(ckpt, job2.restart_report))
    if ckpt2 is not None:
        divergences.extend(
            check_replay_accounting(ckpt2, final_job.restart_report)
        )
    divergences.extend(check_handle_ledger(final_job))

    return CycleResult(
        app=app, src=src.as_tuple(), dst=dst.as_tuple(),
        seed=seed, k=k, ckpt_time=t_ckpt, divergences=tuple(divergences),
        protocol=protocol, fingerprint=final_fp, shards=shards,
        compact=compact, replayed=job2.restart_report.replayed_entries,
    )


def _cycle_cell(app: str, src_t: tuple, dst_t: tuple, n_ranks: int,
                n_steps: int, seed: int, k: int,
                protocol: str = "alg2", shards: int = 1,
                compact: bool = False) -> CycleResult:
    """SweepCell entry point: primitives in, picklable CycleResult out.

    Cycles beyond the first per source (``k > 0``) run as two-hop chains —
    ``--ckpts-per-source 2`` therefore fuzzes both single restarts and
    checkpoint → restart → checkpoint → restart round trips.
    """
    return differential_cycle(
        app, ConfigCell.from_tuple(src_t), ConfigCell.from_tuple(dst_t),
        n_ranks=n_ranks, n_steps=n_steps, seed=seed, k=k, chain=k > 0,
        protocol=protocol, shards=shards, compact=compact,
    )


# ------------------------------------------------------------- the sweep

@dataclass
class ConformanceReport:
    """Every cycle of one conformance sweep, plus the verdict."""

    tier: str
    seed: int
    n_ranks: int
    n_steps: int
    apps: tuple
    results: list
    #: "alg2" | "topo" | "both" | "alternate" — the sweep's protocol axis
    protocol: str = "alg2"
    #: "1" | "2" | ... | "both" — the sweep's shard axis
    shards: str = "1"
    #: "off" | "on" | "both" — the sweep's log-compaction axis
    compact: str = "off"

    @property
    def divergent(self) -> list[CycleResult]:
        """The cycles that failed at least one oracle."""
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        """True when the whole sweep had zero divergences."""
        return not self.divergent

    def summary(self) -> str:
        """Human-readable verdict, with a repro recipe per divergence."""
        cells = {r.dst for r in self.results} | {r.src for r in self.results}
        lines = [
            f"conformance[{self.tier}] seed={self.seed} "
            f"protocol={self.protocol} shards={self.shards} "
            f"compact={self.compact}: "
            f"{len(self.results)} cycles over {len(cells)} cells "
            f"({len(self.apps)} apps, {self.n_ranks} ranks, "
            f"{self.n_steps} steps) — "
            + ("OK" if self.ok else f"{len(self.divergent)} DIVERGENT")
        ]
        for r in self.divergent:
            lines.append(
                f"DIVERGENT: {r.app} {r.pair} k{r.k} [{r.protocol}/"
                f"s{r.shards}{'/compact' if r.compact else ''}] "
                f"ckpt@{r.ckpt_time:.4f}s"
            )
            for d in r.divergences:
                lines.append(f"  {d}")
            lines.append(f"  repro: {r.repro(self.tier)}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-friendly view (the CI artifact format)."""
        return {
            "tier": self.tier,
            "seed": self.seed,
            "n_ranks": self.n_ranks,
            "n_steps": self.n_steps,
            "apps": list(self.apps),
            "protocol": self.protocol,
            "shards": self.shards,
            "compact": self.compact,
            "ok": self.ok,
            "cycles": len(self.results),
            "cycle_results": [
                {
                    "app": r.app,
                    "pair": r.pair,
                    "k": r.k,
                    "protocol": r.protocol,
                    "shards": r.shards,
                    "compact": r.compact,
                    "replayed": r.replayed,
                    "ckpt_time": r.ckpt_time,
                    "ok": r.ok,
                    "divergences": [str(d) for d in r.divergences],
                    "repro": None if r.ok else r.repro(self.tier),
                }
                for r in self.results
            ],
        }


def _cross_protocol_check(results: list) -> list:
    """The "both" axis' extra oracle: pair each cycle's alg2 and topo runs
    and demand bit-identical final fingerprints *between* the protocols.

    Both variants of a cycle cut at the same fuzzed virtual time (the rng
    stream that draws it is protocol-independent), so their restarted
    states must agree bit for bit — a divergence here catches the case
    where both protocols drift from the golden in the same way and the
    per-protocol oracle alone would stay green.
    """
    by_cycle: dict[tuple, dict[str, CycleResult]] = {}
    for r in results:
        by_cycle.setdefault(
            (r.app, r.src, r.dst, r.seed, r.k, r.shards, r.compact), {}
        )[r.protocol] = r
    out = []
    for r in results:
        peers = by_cycle[
            (r.app, r.src, r.dst, r.seed, r.k, r.shards, r.compact)
        ]
        other = peers.get("alg2" if r.protocol == "topo" else "topo")
        if (other is not None and r.fingerprint and other.fingerprint
                and r.fingerprint != other.fingerprint):
            div = Divergence(
                oracle="cross_protocol",
                expected=other.fingerprint, actual=r.fingerprint,
                detail=(f"{other.protocol} vs {r.protocol} restart "
                        "fingerprints differ"),
            )
            r = replace(r, divergences=r.divergences + (div,))
        out.append(r)
    return out


def _cross_shard_check(results: list) -> list:
    """The shard differential's extra oracle: pair each cycle's sequential
    and sharded runs and demand bit-identical final fingerprints.

    The sharded engine's contract is *byte-identical* execution, so any
    drift between the shard counts of one cycle — even if both still match
    the golden — is a divergence worth failing on.
    """
    by_cycle: dict[tuple, dict[int, CycleResult]] = {}
    for r in results:
        by_cycle.setdefault(
            (r.app, r.src, r.dst, r.seed, r.k, r.protocol, r.compact), {}
        )[r.shards] = r
    out = []
    for r in results:
        peers = by_cycle[
            (r.app, r.src, r.dst, r.seed, r.k, r.protocol, r.compact)
        ]
        for other_shards, other in sorted(peers.items()):
            if other_shards >= r.shards or not (r.fingerprint
                                                and other.fingerprint):
                continue
            if r.fingerprint != other.fingerprint:
                div = Divergence(
                    oracle="cross_shard",
                    expected=other.fingerprint, actual=r.fingerprint,
                    detail=(f"shards={other.shards} vs shards={r.shards} "
                            "restart fingerprints differ"),
                )
                r = replace(r, divergences=r.divergences + (div,))
        out.append(r)
    return out


def _cross_compact_check(results: list) -> list:
    """The compaction differential's extra oracle: pair each cycle's
    full-log and compacted runs and demand bit-identical final
    fingerprints, *and* that the compacted restart replayed no more
    entries than the full one.

    The compactor's contract is semantic equivalence — deleting dead
    handle history must not change a single replayed bit — so any drift
    between the two variants of one cycle is a divergence even if both
    still match the golden.  The replay-count comparison is the O(live)
    claim itself: a "compacted" image that replays as much as the full
    log means the pass silently kept everything.
    """
    by_cycle: dict[tuple, dict[bool, CycleResult]] = {}
    for r in results:
        by_cycle.setdefault(
            (r.app, r.src, r.dst, r.seed, r.k, r.protocol, r.shards), {}
        )[r.compact] = r
    out = []
    for r in results:
        peers = by_cycle[
            (r.app, r.src, r.dst, r.seed, r.k, r.protocol, r.shards)
        ]
        if r.compact and not peers.get(False):
            out.append(r)
            continue
        if r.compact:
            full = peers[False]
            if (r.fingerprint and full.fingerprint
                    and r.fingerprint != full.fingerprint):
                div = Divergence(
                    oracle="cross_compact",
                    expected=full.fingerprint, actual=r.fingerprint,
                    detail="full-log vs compacted restart fingerprints "
                           "differ",
                )
                r = replace(r, divergences=r.divergences + (div,))
            if full.replayed and r.replayed > full.replayed:
                div = Divergence(
                    oracle="cross_compact",
                    expected=f"<= {full.replayed} replayed entries",
                    actual=r.replayed,
                    detail="compacted restart replayed more than the "
                           "full log",
                )
                r = replace(r, divergences=r.divergences + (div,))
        out.append(r)
    return out


def _parse_shards_axis(shards) -> tuple[int, ...]:
    """``shards`` axis values: an int, a numeric string, or ``"both"``
    (sequential + 2-shard, the CI differential)."""
    if shards == "both":
        return (1, 2)
    n = int(shards)
    if n < 1:
        raise ValueError(f"shards must be >= 1, got {shards!r}")
    return (n,)


def _parse_compact_axis(compact) -> tuple[bool, ...]:
    """``compact`` axis values: ``"off"``, ``"on"``, a bool, or ``"both"``
    (full + compacted, the CI compaction differential)."""
    if compact == "both":
        return (False, True)
    if compact in ("off", False):
        return (False,)
    if compact in ("on", True):
        return (True,)
    raise ValueError(
        f"unknown compact axis {compact!r}: expected 'off', 'on' or 'both'"
    )


def run_conformance(
    tier: str = "quick",
    seed: int = 0,
    apps: Optional[Sequence[str]] = None,
    n_ranks: int = 4,
    n_steps: int = 4,
    n_sources: int = 2,
    ckpts_per_source: int = 1,
    jobs: Optional[int] = 1,
    only: Optional[str] = None,
    protocol: str = "alg2",
    shards="1",
    compact="off",
) -> ConformanceReport:
    """Sweep the tier's matrix: every app × source cell × *other* cell.

    ``only`` restricts the sweep to cycles whose ``src-label->dst-label``
    pair matches (the syntax :meth:`CycleResult.repro` emits), so a
    divergence found in CI can be replayed as a single cycle locally.

    ``protocol`` selects the checkpoint protocol: ``"alg2"`` or ``"topo"``
    run the matrix under one engine; ``"both"`` runs every cycle under
    each engine at the same fuzzed cut time and additionally cross-checks
    the two restart fingerprints against each other (the protocol
    differential — see docs/protocols.md); ``"alternate"`` cuts a chained
    cycle's hops under alg2 → topo in turn (single-hop cycles degenerate
    to alg2).

    ``shards`` selects the event-shard axis the same way: ``"1"``/``"2"``
    run every cycle at that shard count, ``"both"`` runs each cycle
    sequentially *and* 2-sharded and cross-checks the fingerprints
    (the shard differential — see docs/performance.md).

    ``compact`` selects the log-compaction axis: ``"off"``/``"on"`` run
    every cycle with the full or the compacted record-replay log,
    ``"both"`` runs each cycle both ways from the same fuzzed cut time
    and cross-checks the restart fingerprints and replay counts (the
    compaction differential — see docs/record_replay.md).
    """
    from repro.mana.protocol import PROTOCOLS

    if protocol == "both":
        protocols = PROTOCOLS
    elif protocol in PROTOCOLS + ("alternate",):
        protocols = (protocol,)
    else:
        raise ValueError(
            f"unknown protocol {protocol!r}: expected one of "
            f"{PROTOCOLS + ('both', 'alternate')}"
        )
    shard_counts = _parse_shards_axis(shards)
    compact_modes = _parse_compact_axis(compact)
    apps = tuple(apps or DEFAULT_APPS)
    dsts = matrix_for(tier)
    srcs = source_cells(dsts, n_sources)
    cells = [
        SweepCell(
            _cycle_cell,
            (app, s.as_tuple(), d.as_tuple(), n_ranks, n_steps, seed, k,
             proto, n_shards, do_compact),
            label=(f"conf:{app}:{s.label}->{d.label}/k{k}/{proto}"
                   f"/s{n_shards}" + ("/compact" if do_compact else "")),
        )
        for app in apps
        for s in srcs
        for d in dsts
        if d != s
        for k in range(ckpts_per_source)
        for proto in protocols
        for n_shards in shard_counts
        for do_compact in compact_modes
        if only is None or f"{s.label}->{d.label}" == only
    ]
    if not cells:
        raise ValueError(
            f"conformance sweep selected no cycles (tier={tier!r}, "
            f"only={only!r})"
        )
    results = list(run_cells(cells, jobs=jobs))
    if len(protocols) > 1:
        results = _cross_protocol_check(results)
    if len(shard_counts) > 1:
        results = _cross_shard_check(results)
    if len(compact_modes) > 1:
        results = _cross_compact_check(results)
    return ConformanceReport(
        tier=tier, seed=seed, n_ranks=n_ranks, n_steps=n_steps,
        apps=apps, results=results, protocol=protocol, shards=str(shards),
        compact=str(compact),
    )
