"""Cross-matrix restart conformance (the paper's m×n agnosticism claim,
run as an executable, fuzzed, continuously-tested contract).

A checkpoint taken under any MPI implementation on any network must restart
correctly under *every other* implementation, fabric, and ranks-per-node
layout.  :mod:`repro.conformance` turns that sentence into a differential
harness:

* :mod:`repro.conformance.matrix` enumerates the (MPI impl × fabric ×
  ranks-per-node) configuration cells of the quick and full tiers;
* :mod:`repro.conformance.oracles` defines the equivalence oracles — a
  bit-identical final-state fingerprint and p2p byte/message conservation
  over the merged source+restart metrics;
* :mod:`repro.conformance.harness` runs each app to completion
  uncheckpointed (the golden state), re-runs it with checkpoints injected
  at seeded-random virtual times, restarts the images onto every other
  cell, and reports every divergence with a reproduction recipe.

See ``docs/conformance.md``.
"""

from repro.conformance.harness import (
    ConformanceReport,
    differential_cycle,
    golden_run,
    run_conformance,
)
from repro.conformance.matrix import (
    FULL_TIER,
    QUICK_TIER,
    ConfigCell,
    cluster_for,
    enumerate_cells,
    matrix_for,
    source_cells,
)
from repro.conformance.oracles import (
    ConservationTotals,
    Divergence,
    check_conservation,
    check_golden_state,
    check_handle_ledger,
    check_replay_accounting,
    check_replay_consistency,
    conservation_totals,
    state_fingerprint,
)

__all__ = [
    "ConfigCell",
    "ConformanceReport",
    "ConservationTotals",
    "Divergence",
    "FULL_TIER",
    "QUICK_TIER",
    "check_conservation",
    "check_golden_state",
    "check_handle_ledger",
    "check_replay_accounting",
    "check_replay_consistency",
    "cluster_for",
    "conservation_totals",
    "differential_cycle",
    "enumerate_cells",
    "golden_run",
    "matrix_for",
    "run_conformance",
    "source_cells",
    "state_fingerprint",
]
