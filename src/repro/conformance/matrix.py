"""The conformance matrix: (MPI implementation × fabric × ranks-per-node).

The paper's m×n claim is quantified over configuration *cells*.  A
:class:`ConfigCell` is one point of that matrix; the tier constants pick the
sub-matrices the harness sweeps.  Cells are plain frozen data (picklable,
orderable) so they travel through :class:`~repro.harness.parallel.SweepCell`
parameters and memo keys unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.mpilib.impls import IMPLEMENTATIONS, get_implementation
from repro.net import INTERCONNECTS

#: fabrics usable as the inter-node interconnect (shmem is intra-node only)
INTER_NODE_FABRICS = tuple(n for n in sorted(INTERCONNECTS) if n != "shmem")


@dataclass(frozen=True, order=True)
class ConfigCell:
    """One (MPI impl, fabric, ranks-per-node) point of the matrix."""

    mpi: str
    fabric: str
    ranks_per_node: int

    @property
    def label(self) -> str:
        """Compact human-readable identity (used in labels and repro lines)."""
        return f"{self.mpi}/{self.fabric}/rpn{self.ranks_per_node}"

    def as_tuple(self) -> tuple[str, str, int]:
        """Primitive form for SweepCell params and memo keys."""
        return (self.mpi, self.fabric, self.ranks_per_node)

    @classmethod
    def from_tuple(cls, t: Sequence) -> "ConfigCell":
        """Inverse of :meth:`as_tuple`."""
        mpi, fabric, rpn = t
        return cls(mpi=str(mpi), fabric=str(fabric), ranks_per_node=int(rpn))

    def validate(self) -> None:
        """Raise ValueError for unknown names or an impossible layout."""
        get_implementation(self.mpi)  # raises on unknown impl
        if self.fabric not in INTERCONNECTS:
            raise ValueError(
                f"unknown interconnect {self.fabric!r}; "
                f"known: {sorted(INTERCONNECTS)}"
            )
        if self.ranks_per_node < 1:
            raise ValueError(
                f"ranks_per_node must be >= 1, got {self.ranks_per_node}"
            )


def enumerate_cells(
    mpis: Iterable[str],
    fabrics: Iterable[str],
    ranks_per_node: Iterable[int],
) -> list[ConfigCell]:
    """The full cross product, deterministically ordered and validated."""
    cells = [
        ConfigCell(mpi=m, fabric=f, ranks_per_node=int(r))
        for m in mpis for f in fabrics for r in ranks_per_node
    ]
    seen = set()
    for cell in cells:
        cell.validate()
        if cell in seen:
            raise ValueError(f"duplicate matrix cell {cell.label}")
        seen.add(cell)
    return cells


#: Quick tier: 2 impls × 2 fabrics × 2 layouts — the CI smoke matrix.  The
#: impl pair crosses the MPICH/Open MPI ABI families and the fabric pair
#: crosses the α/β extremes (Aries vs plain TCP).
QUICK_TIER = {
    "mpis": ("craympich", "openmpi"),
    "fabrics": ("aries", "tcp"),
    "ranks_per_node": (2, 4),
}

#: Full tier: every implementation (including the §3.5 debug build) on
#: every inter-node fabric at three layouts.
FULL_TIER = {
    "mpis": tuple(IMPLEMENTATIONS),
    "fabrics": INTER_NODE_FABRICS,
    "ranks_per_node": (1, 2, 4),
}

_TIERS = {"quick": QUICK_TIER, "full": FULL_TIER}


def matrix_for(tier: str) -> list[ConfigCell]:
    """The destination cells of a named tier (``quick`` or ``full``)."""
    try:
        spec = _TIERS[tier]
    except KeyError:
        raise ValueError(
            f"unknown conformance tier {tier!r}; known: {sorted(_TIERS)}"
        ) from None
    return enumerate_cells(spec["mpis"], spec["fabrics"],
                           spec["ranks_per_node"])


def source_cells(cells: Sequence[ConfigCell], n_sources: int) -> list[ConfigCell]:
    """Evenly spaced source cells (checkpoint origins) out of ``cells``.

    Spreading the picks across the ordered matrix guarantees the sources
    themselves differ in implementation, fabric and layout rather than
    clustering in one corner.
    """
    if n_sources < 1:
        raise ValueError(f"need at least one source cell, got {n_sources}")
    n_sources = min(n_sources, len(cells))
    stride = len(cells) / n_sources
    picked = []
    for i in range(n_sources):
        cell = cells[int(i * stride)]
        if cell not in picked:
            picked.append(cell)
    return picked


def cluster_for(cell: ConfigCell, n_ranks: int, name: Optional[str] = None,
                cores_per_node: int = 32):
    """A fresh cluster sized so ``n_ranks`` fit at the cell's layout."""
    from repro.hardware.cluster import make_cluster

    n_nodes = -(-n_ranks // cell.ranks_per_node)
    return make_cluster(
        name or f"conf-{cell.mpi}-{cell.fabric}-rpn{cell.ranks_per_node}",
        n_nodes, cores_per_node=cores_per_node, interconnect=cell.fabric,
        default_mpi=cell.mpi,
    )
