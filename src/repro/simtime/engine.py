"""The discrete-event engine: virtual clock, event queue, completions.

Design notes
------------

* Events are ordered by ``(time, priority, sequence)``.  The monotonically
  increasing sequence number makes ordering total and therefore the whole
  simulation deterministic: two events scheduled for the same instant fire in
  scheduling order.
* There is no thread anywhere in the kernel.  "Processes" in higher layers
  are callback state machines (MPI internals) or interpreters
  (:mod:`repro.mprog`) that re-arm themselves through :meth:`Engine.call_at`
  / :meth:`Engine.call_after` or through :class:`Completion` callbacks.
* A :class:`Completion` is a single-assignment future.  MPI operations return
  one; the rank driver chains on it to resume the application program.
* The kernel is the hot path of every experiment (sweeps spend ~98% of their
  wall-clock inside :meth:`Engine.run` / :meth:`Completion.resolve`), so
  :meth:`Engine.run` keeps its own inlined pop loop, queue entries are bare
  lists indexed positionally, and the engine maintains an incremental live
  event counter so :attr:`Engine.pending_events` is O(1).  None of this
  changes the ``(time, priority, seq)`` total order — determinism is the
  contract (see ``docs/performance.md``).
"""

from __future__ import annotations

import contextlib
import heapq
import math
from typing import Any, Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import attach as _attach_tracer

# Queue entries are bare lists ``[when, priority, seq, label, payload]``
# where ``payload`` is ``(fn, args)`` while live, None once cancelled, and
# ``_FIRED`` once dispatched.  The unique ``seq`` makes heap comparison stop
# before ever reaching label/payload.
_WHEN, _PRIO, _SEQ, _LABEL, _PAYLOAD = range(5)

#: payload sentinel marking an entry whose callback already ran (distinct
#: from None so a late ``cancel()`` cannot un-count a fired event)
_FIRED = object()


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation kernel."""


class DeadlockError(SimulationError):
    """Raised when the engine is asked to make progress but no event is
    pending while some completion is still being awaited."""


class EventHandle:
    """Opaque handle returned by :meth:`Engine.call_at`; used to cancel."""

    __slots__ = ("time", "seq", "_entry", "_engine")

    def __init__(self, time: float, seq: int, entry: list, engine: "Engine") -> None:
        self.time = time
        self.seq = seq
        self._entry = entry
        self._engine = engine

    def cancel(self) -> None:
        """Cancel the event if it has not fired yet (idempotent)."""
        entry = self._entry
        payload = entry[_PAYLOAD]
        if payload is not None and payload is not _FIRED:
            entry[_PAYLOAD] = None
            self._engine._live -= 1

    @property
    def cancelled(self) -> bool:
        """True if cancelled before firing."""
        return self._entry[_PAYLOAD] is None


class Engine:
    """A deterministic discrete-event engine with a virtual clock.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in simulated seconds.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[list] = []
        self._next_seq = 0
        self._live = 0
        self._pending_watchers = 0
        #: the :class:`~repro.simtime.sharded.ShardPlan` when this engine is
        #: sharded, else None.  Layers that know the destination of an event
        #: (fabric delivery, coordinator control messages) consult it to tag
        #: the event's shard; on a plain engine the tag is ignored.
        self.plan = None
        self.trace: Optional[list[tuple[float, str]]] = None
        #: structured tracer (NULL_TRACER unless process-wide tracing is on)
        self.tracer = _attach_tracer(self)
        #: always-on metrics instruments for this engine's lifetime
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------ clock

    @property
    def now(self) -> float:
        """Current virtual time in simulated seconds."""
        return self._now

    # ------------------------------------------------------------- scheduling

    def call_at(
        self,
        when: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        shard: Optional[int] = None,
        shard_from: Optional[int] = None,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``when``.

        ``when`` may equal :attr:`now` (the event fires before the engine
        next advances time) but may not lie in the past.

        ``shard`` is the event's shard affinity hint and ``shard_from`` the
        edge's topological origin (for message edges whose source is not the
        currently dispatching shard — completions resolve synchronously
        across ranks, so dispatch context is not provenance).  The plain
        engine has a single event queue and ignores both (see
        :class:`~repro.simtime.sharded.ShardedEngine`).
        """
        now = self._now
        if when < now:
            if math.isnan(when):
                raise SimulationError("cannot schedule event at NaN time")
            if when < now - 1e-15:
                raise SimulationError(
                    f"cannot schedule event in the past: {when} < now={now}"
                )
            when = now
        elif when != when:  # NaN compares false both ways
            raise SimulationError("cannot schedule event at NaN time")
        seq = self._next_seq
        self._next_seq = seq + 1
        entry = [when, priority, seq, label, (fn, args)]
        heapq.heappush(self._queue, entry)
        self._live += 1
        return EventHandle(when, seq, entry, self)

    def call_after(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        shard: Optional[int] = None,
        shard_from: Optional[int] = None,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, fn, *args, priority=priority,
                            label=label, shard=shard, shard_from=shard_from)

    @contextlib.contextmanager
    def scheduling_shard(self, shard: Optional[int]):
        """Context manager fixing the shard affinity of events scheduled
        inside it (launch/restart seeding).  A no-op on the plain engine;
        :class:`~repro.simtime.sharded.ShardedEngine` overrides it."""
        yield

    # ------------------------------------------------------------- execution

    def step(self) -> bool:
        """Fire the single next event.  Returns False if the queue is empty."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            payload = entry[_PAYLOAD]
            if payload is None:  # cancelled (already uncounted)
                continue
            self._live -= 1
            entry[_PAYLOAD] = _FIRED
            when = entry[_WHEN]
            self._now = when
            if self.trace is not None:
                self.trace.append((when, entry[_LABEL]))
            tracer = self.tracer
            if tracer.enabled:
                tracer.dispatch(when, entry[_LABEL])
            fn, args = payload
            fn(*args)
            return True
        return False

    def run(self, until: float = math.inf, max_events: int = 100_000_000) -> float:
        """Run events until the queue drains or the clock passes ``until``.

        Returns the virtual time at which execution stopped.  Events scheduled
        exactly at ``until`` are executed.  With a finite ``until`` in the
        future, the clock always ends at ``until`` — whether the queue still
        holds later events or drained early — so callers can rely on
        ``run(until=t)`` leaving ``now == t``.  An infinite ``until`` leaves
        the clock at the last fired event.

        ``max_events`` is a firing budget guarding against livelock: the
        engine raises :class:`SimulationError` as soon as the budget is
        exhausted while another runnable event remains (exactly
        ``max_events`` events fire, never more).
        """
        queue = self._queue
        pop = heapq.heappop
        fired = 0
        while queue:
            entry = queue[0]
            payload = entry[_PAYLOAD]
            if payload is None:
                pop(queue)
                continue
            when = entry[_WHEN]
            if when > until:
                break
            if fired >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a livelock"
                )
            pop(queue)
            self._live -= 1
            entry[_PAYLOAD] = _FIRED
            self._now = when
            if self.trace is not None:
                self.trace.append((when, entry[_LABEL]))
            tracer = self.tracer
            if tracer.enabled:
                tracer.dispatch(when, entry[_LABEL])
            fn, args = payload
            fn(*args)
            fired += 1
        if until != math.inf and until > self._now:
            self._now = until
        return self._now

    @property
    def next_event_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None if the queue is empty."""
        return self._peek_time()

    def _peek_time(self) -> Optional[float]:
        queue = self._queue
        while queue:
            entry = queue[0]
            if entry[_PAYLOAD] is None:
                heapq.heappop(queue)
                continue
            return entry[_WHEN]
        return None

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events in the queue.

        Maintained incrementally (O(1)): scheduling increments the counter,
        firing or cancelling decrements it — cancelled entries still sitting
        in the heap are not counted.
        """
        return self._live


class Completion:
    """A single-assignment future living on an :class:`Engine`.

    MPI operations and other asynchronous simulation activities return a
    ``Completion``; consumers register callbacks with :meth:`on_done`.
    Callbacks added after completion fire immediately (synchronously), which
    keeps rank drivers simple and avoids an extra zero-delay event.

    The common case is exactly one callback (a rank driver chaining on an
    MPI operation), so the first callback is stored in a dedicated slot and
    the overflow list is only allocated for the second and later ones.
    """

    __slots__ = ("engine", "label", "_done", "_cancelled", "_value", "_cb",
                 "_callbacks")

    def __init__(self, engine: Engine, label: str = "") -> None:
        self.engine = engine
        self.label = label
        self._done = False
        self._cancelled = False
        self._value: Any = None
        self._cb: Optional[Callable[[Any], None]] = None
        self._callbacks: Optional[list[Callable[[Any], None]]] = None

    @property
    def done(self) -> bool:
        """True once the underlying completion resolved."""
        return self._done

    @property
    def cancelled(self) -> bool:
        """True if cancelled before firing."""
        return self._cancelled

    @property
    def value(self) -> Any:
        """The resolved value; raises if not yet done."""
        if not self._done:
            raise SimulationError(f"completion {self.label!r} not done")
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Mark done and fire callbacks in registration order."""
        if self._cancelled:
            return
        if self._done:
            raise SimulationError(f"completion {self.label!r} resolved twice")
        self._done = True
        self._value = value
        cb = self._cb
        if cb is None:
            return
        self._cb = None
        rest = self._callbacks
        if rest is None:
            cb(value)
            return
        self._callbacks = None
        cb(value)
        for other in rest:
            other(value)

    def resolve_at(self, when: float, value: Any = None) -> None:
        """Schedule resolution at absolute virtual time ``when``."""
        self.engine.call_at(when, self.resolve, value, label=f"resolve:{self.label}")

    def resolve_after(self, delay: float, value: Any = None) -> None:
        """Schedule resolution ``delay`` seconds from now."""
        self.engine.call_after(delay, self.resolve, value, label=f"resolve:{self.label}")

    def cancel(self) -> None:
        """Cancel: callbacks are dropped and resolution becomes a no-op.

        Used when a checkpoint discards the lower half while a rank is blocked
        inside a trivial barrier — the in-flight lower-half operation simply
        ceases to exist.
        """
        self._cancelled = True
        self._cb = None
        self._callbacks = None

    def on_done(self, cb: Callable[[Any], None]) -> None:
        """Register ``cb(value)``; fires immediately if already done."""
        if self._cancelled:
            return
        if self._done:
            cb(self._value)
        elif self._cb is None:
            self._cb = cb
        elif self._callbacks is None:
            self._callbacks = [cb]
        else:
            self._callbacks.append(cb)


def all_of(engine: Engine, completions: list[Completion], label: str = "all") -> Completion:
    """Completion that resolves (with the list of values) when all inputs do."""
    out = Completion(engine, label=label)
    remaining = len(completions)
    if remaining == 0:
        out.resolve([])
        return out
    values: list[Any] = [None] * remaining

    def make_cb(i: int) -> Callable[[Any], None]:
        def cb(value: Any) -> None:
            nonlocal remaining
            values[i] = value
            remaining -= 1
            if remaining == 0:
                out.resolve(values)

        return cb

    for i, c in enumerate(completions):
        c.on_done(make_cb(i))
    return out
