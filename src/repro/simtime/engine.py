"""The discrete-event engine: virtual clock, event queue, completions.

Design notes
------------

* Events are ordered by ``(time, priority, sequence)``.  The monotonically
  increasing sequence number makes ordering total and therefore the whole
  simulation deterministic: two events scheduled for the same instant fire in
  scheduling order.
* There is no thread anywhere in the kernel.  "Processes" in higher layers
  are callback state machines (MPI internals) or interpreters
  (:mod:`repro.mprog`) that re-arm themselves through :meth:`Engine.call_at`
  / :meth:`Engine.call_after` or through :class:`Completion` callbacks.
* A :class:`Completion` is a single-assignment future.  MPI operations return
  one; the rank driver chains on it to resume the application program.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import attach as _attach_tracer


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation kernel."""


class DeadlockError(SimulationError):
    """Raised when the engine is asked to make progress but no event is
    pending while some completion is still being awaited."""


@dataclass(frozen=True)
class EventHandle:
    """Opaque handle returned by :meth:`Engine.call_at`; used to cancel."""

    time: float
    seq: int
    _entry: list = field(repr=False, compare=False)

    def cancel(self) -> None:
        """Cancel the event if it has not fired yet (idempotent)."""
        self._entry[-1] = None

    @property
    def cancelled(self) -> bool:
        """True if cancelled before firing."""
        return self._entry[-1] is None


class Engine:
    """A deterministic discrete-event engine with a virtual clock.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in simulated seconds.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[list] = []
        self._seq = itertools.count()
        self._pending_watchers = 0
        self.trace: Optional[list[tuple[float, str]]] = None
        #: structured tracer (NULL_TRACER unless process-wide tracing is on)
        self.tracer = _attach_tracer(self)
        #: always-on metrics instruments for this engine's lifetime
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------ clock

    @property
    def now(self) -> float:
        """Current virtual time in simulated seconds."""
        return self._now

    # ------------------------------------------------------------- scheduling

    def call_at(
        self,
        when: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``when``.

        ``when`` may equal :attr:`now` (the event fires before the engine
        next advances time) but may not lie in the past.
        """
        if math.isnan(when):
            raise SimulationError("cannot schedule event at NaN time")
        if when < self._now - 1e-15:
            raise SimulationError(
                f"cannot schedule event in the past: {when} < now={self._now}"
            )
        seq = next(self._seq)
        entry = [max(when, self._now), priority, seq, label, (fn, args)]
        heapq.heappush(self._queue, entry)
        return EventHandle(time=entry[0], seq=seq, _entry=entry)

    def call_after(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, fn, *args, priority=priority, label=label)

    # ------------------------------------------------------------- execution

    def step(self) -> bool:
        """Fire the single next event.  Returns False if the queue is empty."""
        while self._queue:
            when, _prio, _seq, label, payload = heapq.heappop(self._queue)
            if payload is None:  # cancelled
                continue
            self._now = when
            if self.trace is not None:
                self.trace.append((when, label))
            if self.tracer.enabled:
                self.tracer.dispatch(when, label)
            fn, args = payload
            fn(*args)
            return True
        return False

    def run(self, until: float = math.inf, max_events: int = 100_000_000) -> float:
        """Run events until the queue drains or the clock passes ``until``.

        Returns the virtual time at which execution stopped.  Events scheduled
        exactly at ``until`` are executed.  With a finite ``until`` in the
        future, the clock always ends at ``until`` — whether the queue still
        holds later events or drained early — so callers can rely on
        ``run(until=t)`` leaving ``now == t``.  An infinite ``until`` leaves
        the clock at the last fired event.
        """
        fired = 0
        while self._queue:
            when = self._peek_time()
            if when is None:
                break
            if when > until:
                break
            if not self.step():
                break
            fired += 1
            if fired > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a livelock"
                )
        if math.isfinite(until) and until > self._now:
            self._now = until
        return self._now

    @property
    def next_event_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None if the queue is empty."""
        return self._peek_time()

    def _peek_time(self) -> Optional[float]:
        while self._queue:
            entry = self._queue[0]
            if entry[-1] is None:
                heapq.heappop(self._queue)
                continue
            return entry[0]
        return None

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return sum(1 for e in self._queue if e[-1] is not None)


class Completion:
    """A single-assignment future living on an :class:`Engine`.

    MPI operations and other asynchronous simulation activities return a
    ``Completion``; consumers register callbacks with :meth:`on_done`.
    Callbacks added after completion fire immediately (synchronously), which
    keeps rank drivers simple and avoids an extra zero-delay event.
    """

    __slots__ = ("engine", "label", "_done", "_cancelled", "_value", "_callbacks")

    def __init__(self, engine: Engine, label: str = "") -> None:
        self.engine = engine
        self.label = label
        self._done = False
        self._cancelled = False
        self._value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def done(self) -> bool:
        """True once the underlying completion resolved."""
        return self._done

    @property
    def cancelled(self) -> bool:
        """True if cancelled before firing."""
        return self._cancelled

    @property
    def value(self) -> Any:
        """The resolved value; raises if not yet done."""
        if not self._done:
            raise SimulationError(f"completion {self.label!r} not done")
        return self._value

    def resolve(self, value: Any = None) -> None:
        """Mark done and fire callbacks in registration order."""
        if self._cancelled:
            return
        if self._done:
            raise SimulationError(f"completion {self.label!r} resolved twice")
        self._done = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(value)

    def resolve_at(self, when: float, value: Any = None) -> None:
        """Schedule resolution at absolute virtual time ``when``."""
        self.engine.call_at(when, self.resolve, value, label=f"resolve:{self.label}")

    def resolve_after(self, delay: float, value: Any = None) -> None:
        """Schedule resolution ``delay`` seconds from now."""
        self.engine.call_after(delay, self.resolve, value, label=f"resolve:{self.label}")

    def cancel(self) -> None:
        """Cancel: callbacks are dropped and resolution becomes a no-op.

        Used when a checkpoint discards the lower half while a rank is blocked
        inside a trivial barrier — the in-flight lower-half operation simply
        ceases to exist.
        """
        self._cancelled = True
        self._callbacks = []

    def on_done(self, cb: Callable[[Any], None]) -> None:
        """Register ``cb(value)``; fires immediately if already done."""
        if self._cancelled:
            return
        if self._done:
            cb(self._value)
        else:
            self._callbacks.append(cb)


def all_of(engine: Engine, completions: list[Completion], label: str = "all") -> Completion:
    """Completion that resolves (with the list of values) when all inputs do."""
    out = Completion(engine, label=label)
    remaining = len(completions)
    if remaining == 0:
        out.resolve([])
        return out
    values: list[Any] = [None] * remaining

    def make_cb(i: int) -> Callable[[Any], None]:
        def cb(value: Any) -> None:
            nonlocal remaining
            values[i] = value
            remaining -= 1
            if remaining == 0:
                out.resolve(values)

        return cb

    for i, c in enumerate(completions):
        c.on_done(make_cb(i))
    return out
