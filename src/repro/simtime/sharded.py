"""Sharded discrete-event execution with conservative cross-shard sync.

The sequential :class:`~repro.simtime.engine.Engine` is pinned at
single-core pure-Python throughput.  This module partitions the simulated
world into **event shards** — one shard per node group, planned by
:mod:`repro.harness.partition` — and synchronizes them conservatively on
cross-shard message edges, Chandy–Misra–Bryant style: because every
cross-shard edge carries at least ``lookahead`` seconds of latency (the
fabric's α for inter-node messages, the control plane's latency for
coordinator traffic), a shard sitting at virtual time *t* can safely
execute every local event strictly before ``t + lookahead`` without ever
receiving an event in its past.

Three execution modes share one window algebra:

* **merged** (:class:`ShardedEngine`, ``mode="merged"``) — one process,
  one heap, the exact global ``(time, priority, seq)`` order of the
  sequential engine.  Every event carries a shard affinity and every
  *explicitly tagged* cross-shard edge is audited against the lookahead;
  the result is byte-identical to the sequential engine by construction.
  This is the mode ``launch_mana(shards=k)`` uses, and the mode the
  conformance harness cross-checks: it proves the world is decomposable
  (no cross-shard edge below the lookahead) while keeping the bitwise
  determinism contract.
* **windowed** (:class:`ShardedEngine`, ``mode="windowed"``) — one
  process, one heap *per shard*, shards advancing independently inside
  conservative time windows ``[floor, floor + lookahead)``.  The
  in-process twin of the parallel backend: same window schedule, same
  causality rules, inspectable and cheap to test differentially.
* **process** (:func:`run_sharded`) — true parallel OS processes, one
  shard world per worker (built inside the worker from a picklable
  :class:`ShardSpec`, the :class:`~repro.harness.parallel.SweepCell`
  contract), synchronized per window over pipes by a persistent
  :class:`~repro.harness.parallel.WorkerPool`.  This is where the
  events/s scaling comes from (``engine_events_per_s_sharded`` in
  ``BENCH_perf.json``).

Determinism is the contract in every mode: merged mode preserves the
sequential order exactly; windowed and process modes fire each shard's
events in local ``(time, priority, seq)`` order and inject cross-shard
messages sorted by ``(arrival, source shard, emission index)``, so two
runs of the same world produce identical results regardless of worker
scheduling.  See ``docs/performance.md`` ("Sharded execution").
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.simtime.engine import (
    _FIRED,
    _LABEL,
    _PAYLOAD,
    _WHEN,
    Engine,
    EventHandle,
    SimulationError,
)

#: index of the shard affinity slot in a sharded queue entry
#: (``[when, priority, seq, label, payload, shard]``)
_SHARD = 5

#: relative slack for lookahead comparisons: virtual times are doubles, so
#: ``(now + α) - now`` can round below α by a few ulps of ``now``
_ULP = 2.220446049250313e-16


def _lookahead_tolerance(now: float) -> float:
    return 16.0 * _ULP * max(1.0, abs(now))


class CausalityError(SimulationError):
    """A cross-shard event would land in its target shard's past, or a
    cross-shard edge carries less than the plan's lookahead."""


@dataclass(frozen=True)
class ShardPlan:
    """The partition of a simulated world into event shards.

    ``shard_of_node`` maps node id → shard id (node-aligned, so intra-node
    shared-memory traffic never crosses shards); ``lookahead`` is the
    minimum virtual latency of any cross-shard edge — the conservative
    synchronization window.  Built by
    :func:`repro.harness.partition.plan_shards`.
    """

    n_shards: int
    shard_of_node: tuple[int, ...]
    lookahead: float
    #: shard that owns global actors (checkpoint coordinator, scheduler)
    control_shard: int = 0

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if not self.lookahead > 0.0:
            raise ValueError(
                f"lookahead must be positive, got {self.lookahead}"
            )
        if not self.shard_of_node:
            raise ValueError("shard_of_node must cover at least one node")
        for node, shard in enumerate(self.shard_of_node):
            if not 0 <= shard < self.n_shards:
                raise ValueError(
                    f"node {node} assigned to shard {shard}, outside "
                    f"[0, {self.n_shards})"
                )
        if not 0 <= self.control_shard < self.n_shards:
            raise ValueError(
                f"control_shard {self.control_shard} outside "
                f"[0, {self.n_shards})"
            )

    @property
    def n_nodes(self) -> int:
        """Number of nodes the plan covers."""
        return len(self.shard_of_node)

    def shard_of_rank(self, placement: Sequence[int], rank: int) -> int:
        """Shard of ``rank`` given a rank → node placement."""
        return self.shard_of_node[placement[rank]]

    def nodes_of(self, shard: int) -> tuple[int, ...]:
        """The node ids assigned to ``shard``."""
        return tuple(n for n, s in enumerate(self.shard_of_node)
                     if s == shard)


class ShardedEngine(Engine):
    """A sharded engine: per-event shard affinity + conservative sync.

    Parameters
    ----------
    plan:
        The :class:`ShardPlan` (node → shard map plus lookahead).
    mode:
        ``"merged"`` (default) executes the exact sequential global order
        while auditing cross-shard edges; ``"windowed"`` advances shards
        independently inside conservative windows (the in-process twin of
        the parallel backend — microworlds and differential tests, not
        full MANA jobs).
    strict:
        If True (default), a cross-shard edge below the lookahead raises
        :class:`CausalityError`; otherwise it is recorded in
        :attr:`lookahead_violations` and execution continues (merged mode
        stays correct either way — the audit is what proves the world
        decomposable).

    Affinity resolution, highest precedence first: an explicit ``shard=``
    argument to ``call_at``/``call_after`` (fabric delivery and the
    coordinator tag these), the :meth:`scheduling_shard` context (launch
    and restart seeding), and finally the shard of the currently executing
    event (a rank's own compute/drain chain stays on its shard for free).
    """

    def __init__(self, plan: ShardPlan, mode: str = "merged",
                 start_time: float = 0.0, strict: bool = True) -> None:
        if mode not in ("merged", "windowed"):
            raise ValueError(f"unknown mode {mode!r}: "
                             "expected 'merged' or 'windowed'")
        super().__init__(start_time)
        self.plan = plan
        self.mode = mode
        self.strict = strict
        self._context_shard: Optional[int] = None
        self._current_shard = plan.control_shard
        #: per-shard event queues (windowed mode; merged uses the global heap)
        self._shard_queues: list[list[list]] = [
            [] for _ in range(plan.n_shards)
        ]
        #: per-shard local clocks (windowed mode)
        self._local_now = [float(start_time)] * plan.n_shards
        #: events dispatched per shard (observability)
        self.events_by_shard = [0] * plan.n_shards
        #: per-shard ``(time, label)`` dispatch streams when ``trace`` is on
        self.shard_traces: list[list[tuple[float, str]]] = [
            [] for _ in range(plan.n_shards)
        ]
        #: count of explicitly tagged cross-shard edges scheduled so far
        self.cross_shard_events = 0
        #: ``(label, delta, lookahead)`` for every under-lookahead edge seen
        #: (non-strict mode; strict mode raises instead)
        self.lookahead_violations: list[tuple[str, float, float]] = []

    # ------------------------------------------------------------ affinity

    def scheduling_shard(self, shard: Optional[int]):
        """Fix the default shard affinity for events scheduled inside the
        ``with`` block (used when seeding per-rank start/replay events)."""
        return _ShardContext(self, shard)

    @property
    def current_shard(self) -> int:
        """Shard of the event being dispatched (control shard at rest)."""
        return self._current_shard

    def shard_of_node(self, node: int) -> int:
        """Shard owning ``node`` under the plan."""
        return self.plan.shard_of_node[node]

    # ---------------------------------------------------------- scheduling

    def call_at(
        self,
        when: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        shard: Optional[int] = None,
        shard_from: Optional[int] = None,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at ``when`` on a shard.

        The event's shard is ``shard`` if given, else the
        :meth:`scheduling_shard` context, else the shard of the currently
        executing event.  Explicitly tagged edges that cross shards are
        audited against the plan's lookahead; the edge's origin is
        ``shard_from`` when given (message edges carry their topological
        source — completions resolve synchronously across ranks, so the
        dispatching shard is not the message's provenance), else the
        scheduling context.
        """
        now = self._now
        if when < now:
            if math.isnan(when):
                raise SimulationError("cannot schedule event at NaN time")
            if when < now - 1e-15:
                raise SimulationError(
                    f"cannot schedule event in the past: {when} < now={now}"
                )
            when = now
        elif when != when:  # NaN compares false both ways
            raise SimulationError("cannot schedule event at NaN time")
        if shard_from is not None:
            origin = shard_from
        elif self._context_shard is not None:
            origin = self._context_shard
        else:
            origin = self._current_shard
        target = origin if shard is None else shard
        if target != origin:
            self.cross_shard_events += 1
            lookahead = self.plan.lookahead
            delta = when - now
            if delta < lookahead - _lookahead_tolerance(now):
                if self.strict:
                    raise CausalityError(
                        f"cross-shard event {label!r} (shard {origin} -> "
                        f"{target}) carries {delta:.3e}s < lookahead "
                        f"{lookahead:.3e}s"
                    )
                self.lookahead_violations.append((label, delta, lookahead))
        if self.mode == "windowed" and when < self._local_now[target]:
            raise CausalityError(
                f"event {label!r} scheduled at {when} in the past of shard "
                f"{target} (local clock {self._local_now[target]})"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        entry = [when, priority, seq, label, (fn, args), target]
        if self.mode == "merged":
            heapq.heappush(self._queue, entry)
        else:
            heapq.heappush(self._shard_queues[target], entry)
        self._live += 1
        return EventHandle(when, seq, entry, self)

    # ----------------------------------------------------------- execution

    def _dispatch(self, entry: list) -> None:
        shard = entry[_SHARD]
        when = entry[_WHEN]
        self._now = when
        self._current_shard = shard
        self.events_by_shard[shard] += 1
        if self.trace is not None:
            self.trace.append((when, entry[_LABEL]))
            self.shard_traces[shard].append((when, entry[_LABEL]))
        tracer = self.tracer
        if tracer.enabled:
            tracer.dispatch(when, entry[_LABEL])
        fn, args = entry[_PAYLOAD]
        entry[_PAYLOAD] = _FIRED
        fn(*args)

    def step(self) -> bool:
        """Fire the single next event (globally earliest live event)."""
        queue = self._queue if self.mode == "merged" else self._merged_head()
        while queue:
            entry = heapq.heappop(queue) if self.mode == "merged" else queue.pop()
            payload = entry[_PAYLOAD]
            if payload is None:
                continue
            self._live -= 1
            self._dispatch(entry)
            return True
        return False

    def _merged_head(self) -> list:
        """Windowed mode: the single earliest live entry, as a pop-able list.

        ``step`` needs global order even in windowed mode (the checkpoint
        pump uses it); a one-element list keeps the two branches uniform.
        """
        best = None
        best_q = None
        for q in self._shard_queues:
            while q and q[0][_PAYLOAD] is None:
                heapq.heappop(q)
            if q and (best is None or q[0] < best):
                best = q[0]
                best_q = q
        if best is None:
            return []
        heapq.heappop(best_q)
        return [best]

    def run(self, until: float = math.inf,
            max_events: int = 100_000_000) -> float:
        """Run to quiescence or ``until`` (inclusive), per the base contract.

        Merged mode replays the sequential engine's exact global order;
        windowed mode advances shards independently inside conservative
        ``[floor, floor + lookahead)`` windows.
        """
        if self.mode == "merged":
            return self._run_merged(until, max_events)
        return self._run_windowed(until, max_events)

    def _run_merged(self, until: float, max_events: int) -> float:
        queue = self._queue
        pop = heapq.heappop
        fired = 0
        while queue:
            entry = queue[0]
            if entry[_PAYLOAD] is None:
                pop(queue)
                continue
            if entry[_WHEN] > until:
                break
            if fired >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a livelock"
                )
            pop(queue)
            self._live -= 1
            self._dispatch(entry)
            fired += 1
        if until != math.inf and until > self._now:
            self._now = until
        return self._now

    def _run_windowed(self, until: float, max_events: int) -> float:
        queues = self._shard_queues
        lookahead = self.plan.lookahead
        fired = 0
        while True:
            floor = None
            for q in queues:
                while q and q[0][_PAYLOAD] is None:
                    heapq.heappop(q)
                if q and (floor is None or q[0][_WHEN] < floor):
                    floor = q[0][_WHEN]
            if floor is None or floor > until:
                break
            window_end = floor + lookahead
            for k, q in enumerate(queues):
                while q:
                    entry = q[0]
                    if entry[_PAYLOAD] is None:
                        heapq.heappop(q)
                        continue
                    when = entry[_WHEN]
                    if when >= window_end or when > until:
                        break
                    if fired >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "likely a livelock"
                        )
                    heapq.heappop(q)
                    self._live -= 1
                    self._local_now[k] = when
                    self._dispatch(entry)
                    fired += 1
        end = max(self._local_now)
        if end > self._now:
            self._now = end
        if until != math.inf and until > self._now:
            self._now = until
        return self._now

    # -------------------------------------------------------------- queries

    def _peek_time(self) -> Optional[float]:
        if self.mode == "merged":
            return super()._peek_time()
        best = None
        for q in self._shard_queues:
            while q and q[0][_PAYLOAD] is None:
                heapq.heappop(q)
            if q and (best is None or q[0][_WHEN] < best):
                best = q[0][_WHEN]
        return best

    def merged_shard_trace(self) -> list[tuple[float, int, str]]:
        """The per-shard dispatch streams merged into one virtual-time
        ordering (``(time, shard, label)``), via
        :func:`repro.obs.export.merge_trace_streams`."""
        from repro.obs.export import merge_trace_streams

        return merge_trace_streams(self.shard_traces)


class _ShardContext:
    """Re-entrant ``with engine.scheduling_shard(k)`` helper."""

    __slots__ = ("_engine", "_shard", "_prev")

    def __init__(self, engine: ShardedEngine, shard: Optional[int]) -> None:
        self._engine = engine
        self._shard = shard
        self._prev: Optional[int] = None

    def __enter__(self) -> "_ShardContext":
        self._prev = self._engine._context_shard
        self._engine._context_shard = self._shard
        return self

    def __exit__(self, *exc) -> None:
        self._engine._context_shard = self._prev


# ===================================================================== #
#                         process-parallel backend                      #
# ===================================================================== #

@dataclass(frozen=True)
class ShardSpec:
    """One shard's world, declared as picklable work (the
    :class:`~repro.harness.parallel.SweepCell` contract): a module-level
    builder plus primitive parameters.  The builder runs *inside* the
    worker process — ``fn(host, *params)`` receives a :class:`ShardHost`
    and returns a world object exposing ``on_message(payload)`` (inbound
    cross-shard messages) and optionally ``result()`` (picklable final
    answer)."""

    fn: Callable[..., Any]
    params: tuple = ()
    label: str = ""

    def name(self) -> str:
        """Human-readable identity used in error messages."""
        if self.label:
            return self.label
        fn_name = getattr(self.fn, "__name__", str(self.fn))
        return f"{fn_name}{self.params!r}"


class ShardHost:
    """Worker-side container for one shard: an engine, an outbox, and the
    conservative-send contract (``send`` must respect the lookahead)."""

    def __init__(self, shard_id: int, n_shards: int, lookahead: float,
                 collect_trace: bool = False) -> None:
        self.shard_id = shard_id
        self.n_shards = n_shards
        self.lookahead = lookahead
        self.engine = Engine()
        if collect_trace:
            self.engine.trace = []
        self.world: Any = None
        self.sent_messages = 0
        self._outbox: list[tuple[float, int, Any]] = []

    # ------------------------------------------------------------ world API

    def send(self, dst_shard: int, payload: Any,
             delay: Optional[float] = None) -> float:
        """Emit a cross-shard message arriving ``delay`` seconds from now
        (default: exactly the lookahead).  Returns the arrival time.

        ``delay`` below the lookahead violates the conservative contract
        and raises :class:`CausalityError` — the Hypothesis property tests
        pin this edge.
        """
        if not 0 <= dst_shard < self.n_shards:
            raise ValueError(f"dst_shard {dst_shard} outside "
                             f"[0, {self.n_shards})")
        now = self.engine.now
        delay = self.lookahead if delay is None else delay
        if delay < self.lookahead - _lookahead_tolerance(now):
            raise CausalityError(
                f"shard {self.shard_id} -> {dst_shard}: message delay "
                f"{delay:.3e}s < lookahead {self.lookahead:.3e}s"
            )
        t_recv = now + delay
        self._outbox.append((t_recv, dst_shard, payload))
        self.sent_messages += 1
        return t_recv

    # ------------------------------------------------------- host protocol

    def advance(self, window_end: float,
                hard_until: float) -> tuple[Optional[float], list]:
        """Fire every local event strictly before ``window_end`` (and no
        later than ``hard_until``), then return ``(next_event_time,
        outbox)``."""
        engine = self.engine
        while True:
            t = engine.next_event_time
            if t is None or t >= window_end or t > hard_until:
                break
            engine.run(until=t)
        out, self._outbox = self._outbox, []
        return engine.next_event_time, out

    def inject(self, messages: Sequence[tuple[float, Any]]) -> None:
        """Schedule inbound cross-shard messages at their arrival times."""
        for t_recv, payload in messages:
            self.engine.call_at(t_recv, self.world.on_message, payload,
                                label="shard:recv")

    def finish(self) -> tuple[Any, float, Optional[list], int]:
        """``(result, final virtual time, trace, events hint)`` — the
        picklable end-of-run summary shipped back to the parent."""
        result = (self.world.result()
                  if hasattr(self.world, "result") else None)
        return result, self.engine.now, self.engine.trace, self.sent_messages


# --- worker-side entry points (module-level so they pickle by reference) ---

_WORKER_HOSTS: dict[int, ShardHost] = {}


def _shard_build(shard_id: int, n_shards: int, lookahead: float,
                 spec: ShardSpec, collect_trace: bool) -> Optional[float]:
    host = ShardHost(shard_id, n_shards, lookahead,
                     collect_trace=collect_trace)
    host.world = spec.fn(host, *spec.params)
    _WORKER_HOSTS[shard_id] = host
    return host.engine.next_event_time


def _shard_step(shard_id: int, window_end: float, hard_until: float,
                inbound: list) -> tuple[Optional[float], list]:
    host = _WORKER_HOSTS[shard_id]
    host.inject(inbound)
    return host.advance(window_end, hard_until)


def _shard_finish(shard_id: int):
    return _WORKER_HOSTS.pop(shard_id).finish()


@dataclass
class ShardedRunResult:
    """Outcome of one :func:`run_sharded` execution."""

    #: per-shard ``world.result()`` values, in shard order
    results: list
    #: final virtual time (max over shards)
    now: float
    #: number of conservative windows executed
    windows: int
    #: total cross-shard messages routed
    messages: int
    #: merged ``(time, shard, label)`` dispatch stream (``collect_traces``)
    trace: Optional[list] = field(default=None)


def run_sharded(
    specs: Sequence[ShardSpec],
    lookahead: float,
    until: float = math.inf,
    parallel: bool = True,
    collect_traces: bool = False,
    max_windows: int = 100_000_000,
) -> ShardedRunResult:
    """Run one shard world per OS process under conservative windows.

    Each window: every shard advances (in parallel) to
    ``min(next event times) + lookahead``, exclusive; the parent routes the
    emitted cross-shard messages — all of which arrive at or after the
    window boundary, by the :meth:`ShardHost.send` contract — and the next
    window begins.  Messages are injected sorted by ``(arrival, source
    shard, emission index)``, so the run is deterministic regardless of
    worker scheduling; ``parallel=False`` drives the identical protocol
    in-process (the differential reference, and the ``jobs=1`` analogue).
    """
    from repro.harness.parallel import WorkerPool

    n = len(specs)
    if n < 1:
        raise ValueError("run_sharded needs at least one shard")
    if not lookahead > 0.0:
        raise ValueError(f"lookahead must be positive, got {lookahead}")

    hosts: list[Optional[ShardHost]] = [None] * n
    pool: Optional[WorkerPool] = None
    if parallel and n > 1:
        pool = WorkerPool(n)

    def build(k: int) -> Optional[float]:
        if pool is not None:
            return pool.call(k, _shard_build, k, n, lookahead, specs[k],
                             collect_traces)
        host = ShardHost(k, n, lookahead, collect_trace=collect_traces)
        host.world = specs[k].fn(host, *specs[k].params)
        hosts[k] = host
        return host.engine.next_event_time

    def step(k: int, window_end: float,
             inbound: list) -> tuple[Optional[float], list]:
        if pool is not None:
            return pool.call(k, _shard_step, k, window_end, until, inbound)
        host = hosts[k]
        host.inject(inbound)
        return host.advance(window_end, until)

    def finish(k: int):
        if pool is not None:
            return pool.call(k, _shard_finish, k)
        return hosts[k].finish()

    try:
        if pool is not None:
            for k in range(n):
                pool.submit(k, _shard_build, k, n, lookahead, specs[k],
                            collect_traces)
            floors = [pool.result(k) for k in range(n)]
        else:
            floors = [build(k) for k in range(n)]

        inbound: list[list[tuple[float, int, int, Any]]] = [
            [] for _ in range(n)
        ]
        windows = 0
        messages = 0
        while True:
            candidates = [t for t in floors if t is not None]
            candidates.extend(t for box in inbound for (t, _s, _i, _p) in box)
            if not candidates:
                break
            floor = min(candidates)
            if floor > until:
                break
            if windows >= max_windows:
                raise SimulationError(
                    f"exceeded max_windows={max_windows}; likely a livelock"
                )
            window_end = floor + lookahead
            batches = []
            for k in range(n):
                # deterministic injection order: (arrival, src, emission)
                batch = [(t, payload) for (t, _src, _idx, payload)
                         in sorted(inbound[k], key=lambda m: m[:3])]
                inbound[k] = []
                batches.append(batch)
            if pool is not None:
                for k in range(n):
                    pool.submit(k, _shard_step, k, window_end, until,
                                batches[k])
                replies = [pool.result(k) for k in range(n)]
            else:
                replies = [step(k, window_end, batches[k])
                           for k in range(n)]
            for k, (floor_k, outbox) in enumerate(replies):
                floors[k] = floor_k
                for idx, (t_recv, dst, payload) in enumerate(outbox):
                    inbound[dst].append((t_recv, k, idx, payload))
                    messages += 1
            windows += 1

        if pool is not None:
            for k in range(n):
                pool.submit(k, _shard_finish, k)
            finals = [pool.result(k) for k in range(n)]
        else:
            finals = [finish(k) for k in range(n)]
    finally:
        if pool is not None:
            pool.close()

    results = [f[0] for f in finals]
    now = max(f[1] for f in finals)
    trace = None
    if collect_traces:
        from repro.obs.export import merge_trace_streams

        trace = merge_trace_streams([f[2] or [] for f in finals])
    return ShardedRunResult(results=results, now=now, windows=windows,
                            messages=messages, trace=trace)


# ------------------------------------------------------- reference worlds

class RingWorld:
    """A self-re-arming timer with a cross-shard token ring: the reference
    world for the sharded backend (benchmarks, differential tests).

    Each shard fires ``n_events`` local ticks ``tick`` seconds apart and
    forwards a token to the next shard every ``ping_every`` ticks, at
    exactly the lookahead.  ``result()`` summarizes fired/sent/received
    counts and a token checksum, so two runs (or two backends) can be
    compared for equality.
    """

    def __init__(self, host: ShardHost, n_events: int, tick: float = 1e-3,
                 ping_every: int = 64) -> None:
        self.host = host
        self.n_events = n_events
        self.tick = tick
        self.ping_every = ping_every
        self.fired = 0
        self.received = 0
        self.checksum = 0
        host.engine.call_after(tick, self._tick, label="ring:tick")

    def _tick(self) -> None:
        self.fired += 1
        if self.ping_every and self.fired % self.ping_every == 0:
            dst = (self.host.shard_id + 1) % self.host.n_shards
            self.host.send(dst, (self.host.shard_id, self.fired))
        if self.fired < self.n_events:
            self.host.engine.call_after(self.tick, self._tick,
                                        label="ring:tick")

    def on_message(self, payload) -> None:
        """Fold an inbound ``(src shard, tick index)`` token into the
        order-sensitive checksum."""
        src, seq = payload
        self.received += 1
        self.checksum = (self.checksum * 1_000_003 + src * 65_537 + seq
                         ) % (1 << 61)

    def result(self) -> dict:
        """Picklable summary: fired/received counts, checksum, end time."""
        return {
            "shard": self.host.shard_id,
            "fired": self.fired,
            "received": self.received,
            "checksum": self.checksum,
            "t_end": round(self.host.engine.now, 12),
        }


def ring_specs(n_shards: int, n_events: int, tick: float = 1e-3,
               ping_every: int = 64) -> list[ShardSpec]:
    """Shard specs for an ``n_shards``-wide :class:`RingWorld`."""
    return [
        ShardSpec(RingWorld, (n_events, tick, ping_every),
                  label=f"ring:{k}/{n_shards}")
        for k in range(n_shards)
    ]
