"""Deterministic, named random-number streams.

Every stochastic element of the simulation (Lustre write stragglers, network
jitter, application initial conditions) draws from its own named stream so
that adding a new consumer of randomness never perturbs existing ones.  All
streams derive from a single root seed via :class:`numpy.random.SeedSequence`
spawning keyed by the stream name, which makes whole-simulation replays
bit-for-bit reproducible.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngStreams:
    """A factory of independent, named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The same ``(seed, name)`` pair always yields the same stream,
        independent of creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Key the child seed on a stable hash of the name, not on spawn
            # order, so stream identity does not depend on call ordering.
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def fork(self, salt: str) -> "RngStreams":
        """Derive an independent family of streams (e.g. per restarted world)."""
        return RngStreams(seed=self.seed ^ zlib.crc32(salt.encode("utf-8")))
