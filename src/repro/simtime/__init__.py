"""Deterministic discrete-event simulation kernel.

Everything in the repository runs on this kernel: simulated MPI ranks,
interconnect message delivery, the checkpoint coordinator's control plane,
and the Lustre storage model all advance a single virtual clock owned by an
:class:`Engine`.  The kernel is deliberately tiny — an ordered event queue, a
future type (:class:`Completion`) for asynchronous operations, and seeded RNG
streams — so that every higher layer is easy to reason about and every run is
bit-for-bit reproducible from its seed.
"""

from repro.simtime.engine import (
    Completion,
    DeadlockError,
    Engine,
    EventHandle,
    SimulationError,
)
from repro.simtime.rng import RngStreams

__all__ = [
    "Completion",
    "DeadlockError",
    "Engine",
    "EventHandle",
    "RngStreams",
    "SimulationError",
]
