"""Program-tree nodes.

Nodes are immutable program *text*: they hold Python callables (compute
kernels, MPI call builders, loop bounds, conditions) and are addressed by
*paths* — tuples of child indices from the root — so that interpreter
continuations can reference them without serializing them.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Union


class ProgramError(RuntimeError):
    """Malformed program trees or invalid paths."""


class Node:
    """Base class; subclasses define ``children`` (possibly empty)."""

    label: str = ""

    @property
    def children(self) -> tuple["Node", ...]:
        """Child nodes, in execution order."""
        return ()

    def describe(self) -> str:
        """Short human-readable label for traces and errors."""
        return f"{type(self).__name__}({self.label})"


class Seq(Node):
    """Run children in order."""

    def __init__(self, *children: Node, label: str = "") -> None:
        if not children:
            raise ProgramError("Seq needs at least one child")
        for c in children:
            if not isinstance(c, Node):
                raise ProgramError(f"Seq child {c!r} is not a program node")
        self._children = tuple(children)
        self.label = label

    @property
    def children(self) -> tuple[Node, ...]:
        """Child nodes, in execution order."""
        return self._children


class Loop(Node):
    """Run ``body`` a fixed or state-dependent number of times.

    ``count`` may be an int or a callable ``f(state) -> int`` evaluated once
    at loop entry (the evaluated bound becomes part of the continuation, so
    restarts see the same trip count).  The current iteration index is
    published in ``state[var]`` if ``var`` is set.
    """

    def __init__(
        self,
        count: Union[int, Callable[[Any], int]],
        body: Node,
        var: Optional[str] = None,
        label: str = "",
    ) -> None:
        if not isinstance(body, Node):
            raise ProgramError("Loop body must be a program node")
        self.count = count
        self.body = body
        self.var = var
        self.label = label

    @property
    def children(self) -> tuple[Node, ...]:
        """Child nodes, in execution order."""
        return (self.body,)

    def eval_count(self, state: Any) -> int:
        """Evaluate the loop bound against the state (once, at entry)."""
        n = self.count(state) if callable(self.count) else self.count
        if n < 0:
            raise ProgramError(f"Loop count evaluated to {n}")
        return int(n)


class While(Node):
    """Run ``body`` while ``cond(state)`` is true (checked before each pass)."""

    def __init__(self, cond: Callable[[Any], bool], body: Node, label: str = "") -> None:
        if not callable(cond):
            raise ProgramError("While cond must be callable")
        if not isinstance(body, Node):
            raise ProgramError("While body must be a program node")
        self.cond = cond
        self.body = body
        self.label = label

    @property
    def children(self) -> tuple[Node, ...]:
        """Child nodes, in execution order."""
        return (self.body,)


class If(Node):
    """Run ``then`` or ``orelse`` depending on ``cond(state)``."""

    def __init__(
        self,
        cond: Callable[[Any], bool],
        then: Node,
        orelse: Optional[Node] = None,
        label: str = "",
    ) -> None:
        if not callable(cond):
            raise ProgramError("If cond must be callable")
        self.cond = cond
        self.then = then
        self.orelse = orelse
        self.label = label

    @property
    def children(self) -> tuple[Node, ...]:
        """Child nodes, in execution order."""
        if self.orelse is None:
            return (self.then,)
        return (self.then, self.orelse)


class Compute(Node):
    """A local computation: ``fn(state)`` mutating application state.

    ``cost`` models the simulated wall time of the kernel — a float or a
    callable ``f(state) -> float`` (seconds of reference-node work).
    """

    def __init__(
        self,
        fn: Callable[[Any], None],
        cost: Union[float, Callable[[Any], float]] = 0.0,
        label: str = "",
    ) -> None:
        if not callable(fn):
            raise ProgramError("Compute fn must be callable")
        self.fn = fn
        self.cost = cost
        self.label = label or getattr(fn, "__name__", "compute")

    def eval_cost(self, state: Any) -> float:
        """Evaluate the kernel's modeled duration against the state."""
        c = self.cost(state) if callable(self.cost) else self.cost
        if c < 0:
            raise ProgramError(f"Compute cost evaluated to {c}")
        return float(c)


class Call(Node):
    """An MPI call site: ``fn(state, api)`` returning a Completion.

    The interpreter parks until the completion resolves; the resolved value
    is stored into ``state[store]`` if ``store`` is given.  Under MANA, the
    ``api`` is the interposed wrapper layer; natively it is a thin adapter
    over the raw endpoint — the program text is identical either way.
    """

    def __init__(
        self,
        fn: Callable[[Any, Any], Any],
        store: Optional[str] = None,
        label: str = "",
    ) -> None:
        if not callable(fn):
            raise ProgramError("Call fn must be callable")
        self.fn = fn
        self.store = store
        self.label = label or getattr(fn, "__name__", "call")


class Program:
    """A rooted program tree with path-based node addressing."""

    def __init__(self, root: Node, name: str = "program") -> None:
        if not isinstance(root, Node):
            raise ProgramError("Program root must be a node")
        self.root = root
        self.name = name

    def node_at(self, path: Sequence[int]) -> Node:
        """Resolve a child-index path from the root."""
        node: Node = self.root
        for i in path:
            kids = node.children
            if not 0 <= i < len(kids):
                raise ProgramError(
                    f"invalid path {tuple(path)} at {node.describe()}"
                )
            node = kids[i]
        return node

    def count_nodes(self) -> int:
        """Total node count of the tree (diagnostics)."""
        def walk(n: Node) -> int:
            return 1 + sum(walk(c) for c in n.children)

        return walk(self.root)
