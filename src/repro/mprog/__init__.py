"""Structured application programs with serializable continuations.

Real MANA checkpoints the application's stack as raw upper-half memory, so a
restarted process resumes mid-function transparently.  A running Python
frame cannot be serialized, so applications in this reproduction are written
as *structured programs* — trees of :class:`Seq`/:class:`Loop`/
:class:`While`/:class:`If`/:class:`Compute`/:class:`Call` nodes — executed
by an :class:`Interpreter` whose continuation (a stack of frames holding
node paths and loop counters) is plain picklable data.

The essential property is preserved: a checkpoint can be cut while a rank is
*anywhere* an MPI wrapper allows (between calls, blocked in a receive,
waiting in phase 1 of a collective), and restart resumes from exactly that
program point — the program *text* (the node tree, including its Python
callables) is like the executable on disk: available at restart and never
stored in the image.
"""

from repro.mprog.ast import Call, Compute, If, Loop, Program, ProgramError, Seq, While
from repro.mprog.interp import Action, Interpreter, ProgramState

__all__ = [
    "Action",
    "Call",
    "Compute",
    "If",
    "Interpreter",
    "Loop",
    "Program",
    "ProgramError",
    "ProgramState",
    "Seq",
    "While",
]
