"""The interpreter: executes a program tree with a picklable continuation.

The interpreter itself performs no I/O and owns no clock — it is a pure
state machine exposing :meth:`Interpreter.next_action` ("what leaf comes
next?") and :meth:`Interpreter.leaf_done` ("that leaf finished; advance").
Rank drivers (native or MANA) own the scheduling policy: they decide when to
execute the returned leaves against the simulation engine, which is what
lets a checkpoint helper freeze a rank *between* those decisions.

Continuations are stacks of :class:`Frame` records holding node paths and
counters only — ``snapshot()`` / ``restore()`` round-trip through pickle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.mprog.ast import (
    Call,
    Compute,
    If,
    Loop,
    Node,
    Program,
    ProgramError,
    Seq,
    While,
)


class ProgramState(dict):
    """Application state: a plain dict with attribute sugar.

    Everything stored here must be picklable; under MANA the state lives on
    the upper-half heap and is part of the checkpoint image.
    """

    def __getattr__(self, name: str) -> Any:
        try:
            return self[name]
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: Any) -> None:
        self[name] = value


@dataclass
class Frame:
    """One continuation frame.  ``kind`` is the node type short name."""

    path: tuple[int, ...]
    kind: str                    # "seq" | "loop" | "while" | "if" | "leaf"
    idx: int = 0                 # seq: next child
    iters: int = 0               # loop/while: completed passes
    count: int = 0               # loop: evaluated bound
    branch: int = -1             # if: -1 undecided, 0 then, 1 else, 2 done


@dataclass(frozen=True)
class Action:
    """What the driver should do next."""

    kind: str                    # "compute" | "call" | "done"
    node: Optional[Node] = None
    path: tuple[int, ...] = ()


class Interpreter:
    """Drives one rank's program; the continuation is fully serializable."""

    def __init__(self, program: Program, state: Optional[ProgramState] = None) -> None:
        self.program = program
        self.state = state if state is not None else ProgramState()
        self.stack: list[Frame] = [self._open_frame((), program.root)]
        self.finished = False
        #: number of leaves completed (diagnostics / progress reporting)
        self.leaves_done = 0

    # ----------------------------------------------------------- execution

    def next_action(self) -> Action:
        """The next leaf to execute (idempotent until :meth:`leaf_done`)."""
        while self.stack:
            frame = self.stack[-1]
            if frame.kind == "leaf":
                node = self.program.node_at(frame.path)
                return Action(
                    kind="compute" if isinstance(node, Compute) else "call",
                    node=node, path=frame.path,
                )
            node = self.program.node_at(frame.path)
            child_idx = self._select_child(frame, node)
            if child_idx is None:
                self._pop()
                continue
            child = node.children[child_idx]
            child_path = frame.path + (child_idx,)
            self.stack.append(self._open_frame(child_path, child))
        self.finished = True
        return Action(kind="done")

    def leaf_done(self) -> None:
        """The current leaf finished; advance past it."""
        if not self.stack or self.stack[-1].kind != "leaf":
            raise ProgramError("leaf_done with no leaf in progress")
        self.leaves_done += 1
        self._pop()

    # --------------------------------------------------------- persistence

    def snapshot(self) -> dict:
        """Picklable continuation (the state dict travels separately)."""
        return {
            "stack": [
                (f.path, f.kind, f.idx, f.iters, f.count, f.branch)
                for f in self.stack
            ],
            "finished": self.finished,
            "leaves_done": self.leaves_done,
        }

    def restore(self, snap: dict) -> None:
        """Install a continuation captured by :meth:`snapshot`.

        The program tree must be the same text (same shape); paths are
        validated against it.
        """
        stack = []
        for path, kind, idx, iters, count, branch in snap["stack"]:
            self.program.node_at(path)  # validates
            stack.append(Frame(tuple(path), kind, idx, iters, count, branch))
        self.stack = stack
        self.finished = bool(snap["finished"])
        self.leaves_done = int(snap["leaves_done"])

    # ------------------------------------------------------------ internals

    def _open_frame(self, path: tuple[int, ...], node: Node) -> Frame:
        if isinstance(node, Seq):
            return Frame(path, "seq")
        if isinstance(node, Loop):
            frame = Frame(path, "loop", count=node.eval_count(self.state))
            if node.var is not None:
                self.state[node.var] = 0
            return frame
        if isinstance(node, While):
            return Frame(path, "while")
        if isinstance(node, If):
            return Frame(path, "if")
        if isinstance(node, (Compute, Call)):
            return Frame(path, "leaf")
        raise ProgramError(f"unknown node type {type(node).__name__}")

    def _select_child(self, frame: Frame, node: Node) -> Optional[int]:
        """Which child to run next, or None if the frame is exhausted."""
        if frame.kind == "seq":
            return frame.idx if frame.idx < len(node.children) else None
        if frame.kind == "loop":
            if frame.iters >= frame.count:
                return None
            if node.var is not None:
                self.state[node.var] = frame.iters
            return 0
        if frame.kind == "while":
            return 0 if node.cond(self.state) else None
        if frame.kind == "if":
            if frame.branch == 2:
                return None
            if frame.branch == -1:
                frame.branch = 0 if node.cond(self.state) else 1
            if frame.branch == 1 and node.orelse is None:
                return None
            return frame.branch
        raise ProgramError(f"unexpected frame kind {frame.kind!r}")

    def _pop(self) -> None:
        self.stack.pop()
        if not self.stack:
            return
        parent = self.stack[-1]
        if parent.kind == "seq":
            parent.idx += 1
        elif parent.kind in ("loop", "while"):
            parent.iters += 1
        elif parent.kind == "if":
            parent.branch = 2
