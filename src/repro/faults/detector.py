"""Coordinator-side failure detection by heartbeat timeout.

The DMTCP-style coordinator MANA builds on keeps a TCP connection to each
rank's checkpoint helper thread; a dead node is noticed when its helper
stops answering.  :class:`FailureDetector` models that: every ``period``
seconds it pings each rank over the control plane (same
:class:`~repro.mana.coordinator.ControlPlaneModel` delays the checkpoint
protocol pays), live helpers pong back, and a rank whose last pong is
older than ``timeout`` is declared failed.  Subscribers — typically
:meth:`repro.mana.coordinator.Coordinator.notify_rank_failure`, which
aborts any in-flight Algorithm-2 round — are notified exactly once per
rank.

The periodic tick has a useful side effect: it keeps the event queue
non-empty, so a checkpoint step-loop waiting on a round that can never
converge reaches the timeout instead of running the queue dry.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.mana.coordinator import ControlPlaneModel
from repro.simtime import Engine


class RankFailure(RuntimeError):
    """A rank was declared dead by the failure detector."""

    def __init__(self, rank: int, at: float) -> None:
        super().__init__(
            f"rank {rank} declared failed at t={at:.6f} (heartbeat timeout)"
        )
        self.rank = rank
        self.at = at


class FailureDetector:
    """Heartbeat-based detector over one job attempt's rank helpers."""

    def __init__(
        self,
        engine: Engine,
        runtimes: list,
        control: Optional[ControlPlaneModel] = None,
        period: float = 0.05,
        timeout: Optional[float] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"heartbeat period must be positive, got {period}")
        self.engine = engine
        self.runtimes = runtimes
        self.control = control if control is not None else ControlPlaneModel()
        self.period = float(period)
        #: declare a rank dead when its last pong is older than this;
        #: defaults to three periods (must exceed one period plus the
        #: control-plane round trip, or healthy ranks get declared dead)
        self.timeout = float(timeout) if timeout is not None else 3 * self.period
        #: rank -> virtual time of its most recent pong
        self.last_seen: dict[int, float] = {
            r: engine.now for r in range(len(runtimes))
        }
        #: callbacks invoked once per failed rank, as ``cb(rank)``
        self.on_failure: list[Callable[[int], None]] = []
        #: ranks already declared failed
        self.failed: set[int] = set()
        self._running = False
        self._handle = None

    def start(self) -> None:
        """Begin the heartbeat loop (idempotent)."""
        if self._running:
            return
        self._running = True
        self._tick()

    def stop(self) -> None:
        """Stop the loop; no further pings, pongs are ignored."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ------------------------------------------------------------- internals

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.engine.now
        for rank in range(len(self.runtimes)):
            if rank in self.failed:
                continue
            if now - self.last_seen[rank] > self.timeout:
                self._declare_failed(rank)
        for rank, rt in enumerate(self.runtimes):
            if rank in self.failed:
                continue
            self.engine.call_after(
                self.control.fanout_delay(rank), self._ping, rank,
                label=f"hb:ping->r{rank}",
            )
        self._handle = self.engine.call_after(
            self.period, self._tick, label="hb:tick"
        )

    def _ping(self, rank: int) -> None:
        rt = self.runtimes[rank]
        if getattr(rt, "alive", True):
            self.engine.call_after(
                self.control.reply_delay(), self._pong, rank,
                label=f"hb:pong<-r{rank}",
            )

    def _pong(self, rank: int) -> None:
        if self._running:
            self.last_seen[rank] = self.engine.now

    def _declare_failed(self, rank: int) -> None:
        self.failed.add(rank)
        for cb in list(self.on_failure):
            cb(rank)
