"""Automated resilience: checkpoint, crash, detect, re-plan, restart.

:func:`run_resilient` is the subsystem's top-level loop — the simulated
equivalent of running a production job under MANA with periodic
checkpoints and an automatic restart-on-failure policy:

1. launch the job, arm the fault injector, start the heartbeat detector;
2. advance in ``interval``-sized slices, cutting a coordinated checkpoint
   between slices (two-generation retention via
   :class:`~repro.mana.autockpt.CheckpointPruner`);
3. on a failure — detected mid-compute by heartbeat timeout, or surfaced
   as :class:`~repro.mana.coordinator.CheckpointAborted` mid-protocol —
   abandon the attempt, re-plan onto the surviving nodes (or a spare
   cluster), restart from the newest saved checkpoint, and continue;
4. stop when the job completes or the retry budget is exhausted.

Time is accounted on a single *global* axis: each attempt's engine starts
at zero, and ``offset`` (the global time at that attempt's t=0) threads
through the injector so one fault model spans the whole run.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Union

from repro.faults.detector import FailureDetector
from repro.faults.injector import FaultInjector
from repro.faults.models import Fault, FaultModel, NodeCrash, ScriptedFaults
from repro.hardware.cluster import Cluster, ClusterError
from repro.mana.autockpt import CheckpointPruner
from repro.mana.coordinator import CheckpointAborted, CheckpointReport
from repro.mana.job import ManaJob, launch_mana, restart
from repro.mana.storage import load_checkpoint
from repro.simtime import Engine

MB = 1 << 20


@dataclass
class FailureRecord:
    """One failure event and what it cost."""

    #: ranks declared dead (by the detector, or killed by the injector)
    ranks: tuple[int, ...]
    #: nodes taken down by the fault (empty if unknown)
    nodes: tuple[int, ...]
    #: global virtual time the fault fired
    global_time: float
    #: global virtual time the failure was detected / the attempt abandoned
    detected_at: float
    #: what the job was doing: ``"compute"`` or ``"checkpoint"``
    during: str
    #: simulated seconds of work redone because of this failure
    lost_work: float
    #: 1-based attempt index the failure ended
    attempt: int


@dataclass
class ResilientRun:
    """Outcome of one :func:`run_resilient` invocation."""

    completed: bool = False
    #: total simulated seconds across every attempt (incl. restarts)
    wallclock: float = 0.0
    #: number of successful restarts performed
    recoveries: int = 0
    #: why the loop stopped: "completed" | "retry budget exhausted" |
    #: "no viable cluster"
    stop_reason: str = ""
    failures: list[FailureRecord] = field(default_factory=list)
    reports: list[CheckpointReport] = field(default_factory=list)
    #: global completion time of each saved checkpoint
    checkpoint_times: list[float] = field(default_factory=list)
    saved_dirs: list[pathlib.Path] = field(default_factory=list)
    #: number of attempts (launches + restarts) made
    attempts: int = 0
    #: uninterrupted runtime of the same job (useful work), if known
    reference_time: Optional[float] = None
    #: the final attempt's job object (for inspecting states/filesystems)
    final_job: Optional[ManaJob] = None

    @property
    def lost_work_total(self) -> float:
        """Total simulated seconds of redone work across all failures."""
        return sum(f.lost_work for f in self.failures)

    @property
    def efficiency(self) -> float:
        """Useful work over total simulated time (NaN if no reference)."""
        if self.reference_time is None or self.wallclock <= 0:
            return float("nan")
        return self.reference_time / self.wallclock

    @property
    def final_states(self) -> Optional[list]:
        """The final attempt's per-rank program states (None if never ran)."""
        return self.final_job.states if self.final_job is not None else None


def _advance(engine: Engine, deadline: float, should_stop: Callable[[], bool]) -> None:
    """Step ``engine`` to ``deadline``, returning early if ``should_stop``.

    Stepping one event at a time (instead of ``run(until=...)``) leaves the
    clock at the stopping event — a detected failure or job completion —
    rather than forcing it to the deadline.
    """
    while not should_stop():
        nxt = engine.next_event_time
        if nxt is None or nxt > deadline:
            break
        engine.step()
    if not should_stop() and engine.now < deadline:
        engine.run(until=deadline)


def _plan_target(
    primary: Cluster,
    spare: Optional[Cluster],
    n_ranks: int,
    ranks_per_node: Optional[int],
) -> tuple[Cluster, Optional[int]]:
    """Pick where the next attempt runs: primary at the requested layout,
    else the spare, else either cluster with ranks spread over whatever
    healthy nodes remain.  Raises :class:`ClusterError` if nothing fits."""
    candidates: list[tuple[Cluster, Optional[int]]] = [(primary, ranks_per_node)]
    if spare is not None:
        candidates.append((spare, ranks_per_node))
    if ranks_per_node is not None:
        candidates.append((primary, None))
        if spare is not None:
            candidates.append((spare, None))
    for clus, rpn in candidates:
        try:
            clus.place_ranks(n_ranks, ranks_per_node=rpn)
            return clus, rpn
        except ClusterError:
            continue
    raise ClusterError(
        f"no viable cluster for {n_ranks} ranks: primary has "
        f"{len(primary.alive_nodes)} healthy nodes"
        + (f", spare has {len(spare.alive_nodes)}" if spare is not None else "")
    )


def run_resilient(
    cluster: Cluster,
    program_factory,
    n_ranks: int,
    interval: float,
    faults: Union[FaultModel, Iterable[Fault], None] = None,
    ranks_per_node: Optional[int] = None,
    mpi: Optional[str] = None,
    spare_cluster: Optional[Cluster] = None,
    out_dir: Union[str, pathlib.Path, None] = None,
    keep: int = 2,
    max_restarts: int = 8,
    heartbeat_period: Optional[float] = None,
    heartbeat_timeout: Optional[float] = None,
    app_mem_bytes: Union[int, Callable[[int], int]] = 16 * MB,
    seed: int = 0,
    reference_time: Optional[float] = None,
) -> ResilientRun:
    """Run a job under periodic checkpoints with automatic crash recovery.

    ``faults`` is a :class:`FaultModel` or a plain list of
    :class:`Fault` events on the global time axis.  Checkpoints are cut
    every ``interval`` simulated seconds; if ``out_dir`` is given each is
    persisted (newest ``keep`` retained, numbering continuing across
    restarts) and recovery reloads the newest from disk — otherwise the
    newest set is kept in memory.  ``reference_time`` (the uninterrupted
    runtime) is measured with a clean extra run when not supplied, so
    :attr:`ResilientRun.efficiency` is always meaningful.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    if max_restarts < 0:
        raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
    model: Optional[FaultModel]
    if faults is None:
        model = None
    elif isinstance(faults, FaultModel):
        model = faults
    else:
        model = ScriptedFaults(faults)

    if reference_time is None:
        ref_job = launch_mana(
            cluster, program_factory, n_ranks, ranks_per_node=ranks_per_node,
            mpi=mpi, app_mem_bytes=app_mem_bytes, seed=seed,
        ).start()
        reference_time = ref_job.run_to_completion()

    out = ResilientRun(reference_time=reference_time)
    pruner = (
        CheckpointPruner(out_dir, keep=keep) if out_dir is not None else None
    )
    hb_period = (
        heartbeat_period if heartbeat_period is not None
        else max(interval / 20.0, 1e-3)
    )
    global_t = 0.0
    last_ckpt = None
    last_ckpt_global_end: Optional[float] = None

    while True:
        out.attempts += 1
        try:
            target, rpn = _plan_target(
                cluster, spare_cluster, n_ranks, ranks_per_node
            )
        except ClusterError:
            out.stop_reason = "no viable cluster"
            break
        attempt_t0 = global_t
        fresh_launch = last_ckpt is None
        if fresh_launch:
            job = launch_mana(
                target, program_factory, n_ranks, ranks_per_node=rpn,
                mpi=mpi, app_mem_bytes=app_mem_bytes, seed=seed,
            )
        else:
            ckpt = last_ckpt
            if pruner is not None and pruner.latest_dir is not None:
                ckpt = load_checkpoint(pruner.latest_dir)
            job = restart(
                ckpt, target, program_factory, ranks_per_node=rpn, mpi=mpi,
                seed=seed + out.attempts,
            )
        engine = job.engine
        injector = FaultInjector(engine, target, job, offset=global_t)
        if model is not None:
            injector.arm(model)
        detector = FailureDetector(
            engine, job.runtimes, control=job.coordinator.control,
            period=hb_period, timeout=heartbeat_timeout,
        )
        dead_ranks: list[int] = []

        def _on_failure(rank: int, _job=job) -> None:
            """Route a heartbeat timeout into the coordinator's abort path."""
            dead_ranks.append(rank)
            _job.coordinator.notify_rank_failure(rank)

        detector.on_failure.append(_on_failure)
        if fresh_launch:
            job.start()  # restarted jobs start their own drivers post-replay
        detector.start()

        failure_during: Optional[str] = None
        while True:
            deadline = engine.now + interval
            _advance(
                engine, deadline,
                lambda: bool(dead_ranks) or job.finished.done,
            )
            if dead_ranks:
                failure_during = "compute"
                break
            if job.finished.done:
                break
            try:
                ckpt, report = job.checkpoint()
            except CheckpointAborted:
                failure_during = "checkpoint"
                break
            out.reports.append(report)
            last_ckpt = ckpt
            last_ckpt_global_end = global_t + engine.now
            out.checkpoint_times.append(last_ckpt_global_end)
            if pruner is not None:
                pruner.save(ckpt)
                out.saved_dirs = list(pruner.saved_dirs)

        detector.stop()
        injector.disarm()
        if failure_during is None:
            global_t += engine.now
            out.completed = True
            out.stop_reason = "completed"
            out.final_job = job
            break

        # ----------------------------------------------------- failure path
        crash = next(
            (inj for inj in reversed(injector.injected)
             if isinstance(inj.fault, NodeCrash)), None,
        )
        crash_global = (
            global_t + crash.local_time if crash is not None
            else global_t + engine.now
        )
        resume_point = attempt_t0
        if last_ckpt_global_end is not None:
            resume_point = max(resume_point, last_ckpt_global_end)
        out.failures.append(FailureRecord(
            ranks=tuple(sorted(set(dead_ranks) | detector.failed)),
            nodes=tuple(crash.fault.nodes) if crash is not None else (),
            global_time=crash_global,
            detected_at=global_t + engine.now,
            during=failure_during,
            lost_work=max(0.0, crash_global - resume_point),
            attempt=out.attempts,
        ))
        global_t += engine.now
        out.final_job = job
        if len(out.failures) > max_restarts:
            out.stop_reason = "retry budget exhausted"
            break
        out.recoveries += 1

    out.wallclock = global_t
    return out
