"""Fault injection and automated resilience for simulated MANA jobs.

This package closes the loop the paper's checkpointing exists for: things
*fail*.  It provides deterministic fault models (scripted, exponential
MTBF, rack-correlated), an injector that applies them to a live world
(crashing nodes and the ranks on them mid-flight, degrading the fabric,
slowing the filesystem), a heartbeat failure detector that lets the
coordinator abort an un-convergeable Algorithm-2 round, and
:func:`run_resilient` — the periodic-checkpoint / detect / re-plan /
restart loop, with efficiency accounting against the uninterrupted run.
"""

from repro.faults.detector import FailureDetector, RankFailure
from repro.faults.injector import FaultInjector, InjectedFault
from repro.faults.manager import FailureRecord, ResilientRun, run_resilient
from repro.faults.models import (
    CorrelatedFaults,
    ExponentialNodeFaults,
    Fault,
    FaultModel,
    NetworkDegradation,
    NodeCrash,
    NodeCrashAt,
    ScriptedFaults,
    SlowIO,
    node_crash_at,
)

__all__ = [
    "CorrelatedFaults",
    "ExponentialNodeFaults",
    "FailureDetector",
    "FailureRecord",
    "Fault",
    "FaultInjector",
    "FaultModel",
    "InjectedFault",
    "NetworkDegradation",
    "NodeCrash",
    "NodeCrashAt",
    "RankFailure",
    "ResilientRun",
    "ScriptedFaults",
    "SlowIO",
    "node_crash_at",
    "run_resilient",
]
