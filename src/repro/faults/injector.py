"""Fault injection: applying a fault model to a live simulated world.

The :class:`FaultInjector` bridges a :class:`~repro.faults.models.
FaultModel` (global-time fault schedule) and one *attempt* of a job (a
fresh engine whose clock starts at 0).  ``offset`` is the global time at
engine time 0, so the injector can translate the schedule into local
events.  One fault is armed at a time; when it fires the injector mutates
the world — crashes nodes and kills their ranks mid-flight, degrades the
fabric, slows the filesystem — records it, and arms the next.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.models import (
    Fault,
    FaultModel,
    NetworkDegradation,
    NodeCrash,
    SlowIO,
)
from repro.hardware.cluster import Cluster
from repro.obs.events import Category
from repro.simtime import Engine


@dataclass
class InjectedFault:
    """One fault that actually fired, with its local (engine) time."""

    fault: Fault
    local_time: float


class FaultInjector:
    """Schedules and applies faults from a model onto one job attempt."""

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        job=None,
        offset: float = 0.0,
    ) -> None:
        self.engine = engine
        self.cluster = cluster
        #: the :class:`repro.mana.job.ManaJob` whose ranks die with their
        #: nodes; optional so hardware-only experiments can inject too
        self.job = job
        #: global virtual time corresponding to this engine's t=0
        self.offset = float(offset)
        #: faults that fired on this attempt, in firing order
        self.injected: list[InjectedFault] = []
        self._model: Optional[FaultModel] = None
        self._handle = None

    # ------------------------------------------------------------- scheduling

    def arm(self, model: FaultModel) -> None:
        """Start injecting from ``model`` (one pending fault at a time)."""
        self._model = model
        self._schedule_next()

    def disarm(self) -> None:
        """Cancel the pending fault and restore transient degradations.

        Called when an attempt is abandoned: the shared storage object
        outlives this engine (the next attempt reuses it), so an in-flight
        :class:`SlowIO` whose restore event would die with the engine must
        be undone here.  The fabric belongs to the attempt's world and dies
        with it, but is restored too for symmetry.
        """
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        self._model = None
        self.cluster.storage.restore()
        if self.job is not None:
            self.job.world.fabric.restore()

    def _schedule_next(self) -> None:
        if self._model is None:
            return
        fault = self._model.next_fault(self.offset + self.engine.now)
        if fault is None:
            self._handle = None
            return
        local = fault.time - self.offset
        self._handle = self.engine.call_at(
            local, self._fire, fault, label=f"fault@{fault.time:g}"
        )

    def _fire(self, fault: Fault) -> None:
        self._handle = None
        tr = self.engine.tracer
        if tr.enabled:
            args = {"global_time": fault.time}
            if isinstance(fault, NodeCrash):
                args["nodes"] = list(fault.nodes)
            tr.instant(f"fault:{type(fault).__name__}", cat=Category.FAULT,
                       **args)
        self.engine.metrics.counter(
            "faults.injected", kind=type(fault).__name__
        ).inc()
        self.apply(fault)
        self.injected.append(InjectedFault(fault, self.engine.now))
        self._schedule_next()

    # -------------------------------------------------------------- appliers

    def apply(self, fault: Fault) -> None:
        """Apply ``fault`` to the world right now (also usable directly)."""
        if isinstance(fault, NodeCrash):
            for nid in fault.nodes:
                self.crash_node(nid)
        elif isinstance(fault, NetworkDegradation):
            self._degrade_network(fault)
        elif isinstance(fault, SlowIO):
            self._slow_io(fault)
        else:
            raise TypeError(f"unknown fault kind: {type(fault).__name__}")

    def crash_node(self, node_id: int) -> None:
        """Fail-stop ``node_id``: mark it failed, kill its resident ranks.

        Unknown node ids and already-failed nodes are ignored — a scripted
        scenario replayed on a spare cluster may name nodes that are not
        there.
        """
        node = next(
            (n for n in self.cluster.nodes if n.node_id == node_id), None
        )
        if node is None or node.failed:
            return
        node.fail(at=self.offset + self.engine.now)
        if self.job is not None:
            for rank, nid in enumerate(self.job.world.placement):
                if nid == node_id:
                    self.job.runtimes[rank].kill()

    def _degrade_network(self, fault: NetworkDegradation) -> None:
        if self.job is None:
            return
        fabric = self.job.world.fabric
        # the fault's beta_mult scales the *inverse-bandwidth* term, i.e. a
        # beta_mult of 4 divides the fabric's bandwidth by 4
        fabric.degrade(
            alpha_mult=fault.alpha_mult, beta_mult=1.0 / fault.beta_mult
        )
        self.engine.call_after(
            fault.duration, fabric.restore, label="fault:net-restore"
        )

    def _slow_io(self, fault: SlowIO) -> None:
        storage = self.cluster.storage
        storage.degrade(fault.factor)
        self.engine.call_after(
            fault.duration, storage.restore, label="fault:io-restore"
        )
