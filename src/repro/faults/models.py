"""Fault models: *what* goes wrong, and *when*.

A fault model is a deterministic generator of :class:`Fault` events on the
global (cross-restart) time axis.  The :class:`~repro.faults.injector.
FaultInjector` asks a model for the next fault strictly after a given time
and schedules it on the live engine, so the same model instance naturally
spans restarts: after a crash at global time ``T`` the new attempt keeps
drawing faults *after* ``T``.

Three generators are provided, mirroring the failure modes checkpointing
systems like MANA are deployed against:

* :class:`ScriptedFaults` — an explicit list, for reproducing a precise
  scenario (e.g. "kill node 3 exactly mid-Algorithm-2");
* :class:`ExponentialNodeFaults` — the classic per-node Poisson process
  with a given MTBF, seeded via :class:`repro.simtime.rng.RngStreams` so
  every sweep point is replayable bit-for-bit;
* :class:`CorrelatedFaults` — wraps another model and widens each node
  crash to its whole rack/PSU group, modeling correlated infrastructure
  failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.simtime.rng import RngStreams


@dataclass(frozen=True)
class Fault:
    """Base event: something goes wrong at global virtual time ``time``."""

    #: global virtual time (cumulative across restarts) at which to fire
    time: float


@dataclass(frozen=True)
class NodeCrash(Fault):
    """One or more compute nodes fail-stop; every rank on them dies."""

    #: node ids that crash together
    nodes: tuple[int, ...] = ()


@dataclass(frozen=True)
class NetworkDegradation(Fault):
    """Transient fabric brownout: α/β multiplied for ``duration`` seconds."""

    #: seconds the degradation lasts before the fabric is restored
    duration: float = 1.0
    #: multiplier applied to the fabric's latency term (α)
    alpha_mult: float = 1.0
    #: multiplier applied to the fabric's inverse-bandwidth term (β)
    beta_mult: float = 1.0


@dataclass(frozen=True)
class SlowIO(Fault):
    """Transient parallel-filesystem slowdown (contending jobs, OST rebuild)."""

    #: seconds the slowdown lasts before bandwidth is restored
    duration: float = 1.0
    #: factor by which Lustre bandwidths are divided while active
    factor: float = 4.0


def node_crash_at(time: float, node: int) -> NodeCrash:
    """Convenience: a scripted single-node crash at global time ``time``."""
    return NodeCrash(time=time, nodes=(node,))


#: Alias matching the scenario-script spelling used in docs and examples.
NodeCrashAt = node_crash_at


class FaultModel:
    """Interface: a deterministic stream of faults on the global time axis."""

    def next_fault(self, after: float) -> Optional[Fault]:
        """Return the earliest fault with ``fault.time > after``, or None."""
        raise NotImplementedError


class ScriptedFaults(FaultModel):
    """An explicit, finite fault schedule."""

    def __init__(self, faults: Iterable[Fault]) -> None:
        self.faults = sorted(faults, key=lambda f: f.time)

    def next_fault(self, after: float) -> Optional[Fault]:
        """The earliest scripted fault strictly after ``after``."""
        for f in self.faults:
            if f.time > after:
                return f
        return None


class ExponentialNodeFaults(FaultModel):
    """Independent per-node Poisson failure processes.

    Each node draws exponential inter-arrival times with mean
    ``mtbf_seconds`` from its own named stream
    (``fault:node<NID>``), so adding or querying nodes never perturbs the
    arrival sequence of another node, and the whole process replays
    identically for a given :class:`RngStreams` seed.
    """

    def __init__(
        self,
        node_ids: Sequence[int],
        mtbf_seconds: float,
        rng: RngStreams,
    ) -> None:
        if mtbf_seconds <= 0:
            raise ValueError(f"MTBF must be positive, got {mtbf_seconds}")
        self.node_ids = list(node_ids)
        self.mtbf_seconds = float(mtbf_seconds)
        self.rng = rng
        # per-node cumulative arrival times, extended lazily (append-only,
        # so answers never depend on query order)
        self._arrivals: dict[int, list[float]] = {n: [] for n in self.node_ids}

    def _extend_past(self, node: int, t: float) -> None:
        arr = self._arrivals[node]
        gen = self.rng.stream(f"fault:node{node}")
        while not arr or arr[-1] <= t:
            last = arr[-1] if arr else 0.0
            arr.append(last + float(gen.exponential(self.mtbf_seconds)))

    def next_fault(self, after: float) -> Optional[Fault]:
        """The earliest node-crash arrival strictly after ``after``."""
        best_t: Optional[float] = None
        best_node: Optional[int] = None
        for node in self.node_ids:
            self._extend_past(node, after)
            t = next(t for t in self._arrivals[node] if t > after)
            if best_t is None or t < best_t:
                best_t, best_node = t, node
        if best_t is None:
            return None
        return NodeCrash(time=best_t, nodes=(best_node,))


class CorrelatedFaults(FaultModel):
    """Widen node crashes from a base model to whole rack/PSU groups.

    ``groups`` typically comes from :meth:`repro.hardware.cluster.Cluster.
    rack_groups`.  Non-crash faults pass through unchanged; a crash touching
    any member of a group takes down the union of all groups it intersects.
    """

    def __init__(
        self, base: FaultModel, groups: Sequence[Sequence[int]]
    ) -> None:
        self.base = base
        self.groups = [tuple(g) for g in groups]

    def next_fault(self, after: float) -> Optional[Fault]:
        """Next base fault, with node crashes expanded to full groups."""
        fault = self.base.next_fault(after)
        if not isinstance(fault, NodeCrash):
            return fault
        doomed = set(fault.nodes)
        for group in self.groups:
            if doomed & set(group):
                doomed |= set(group)
        return NodeCrash(time=fault.time, nodes=tuple(sorted(doomed)))
