"""Shared-Lustre contention across tenants: the storage arbiter.

The NERSC deployment experience the facility reproduces is that checkpoint
*storms* — many jobs draining images at once — are what actually limits a
production MANA installation, not any single job's write time.  The model:

* every checkpoint write burst and every restart read burst occupies a
  *drain window* ``[now, now + burst.max_time]`` on the shared backend;
* a new burst starting while ``k`` windows are still open gets
  ``aggregate_bandwidth / (k + 1)`` — even fair-share, which is what
  Lustre TBF QoS rules enforce site-wide.  The share is fixed at admission
  (bursts are atomic in the model), a deliberate simplification documented
  in docs/facility.md;
* per-node injection bandwidth is untouched: the facility allocates whole
  nodes, so two tenants never share a NIC.

The arbiter also keeps the facility's storage-traffic ledger (bytes and
burst counts by direction, peak concurrency), which feeds
:class:`~repro.facility.metrics.FacilityReport`.
"""

from __future__ import annotations

from repro.hardware.storage import WriteReport
from repro.simtime import Engine


class StorageArbiter:
    """Divides shared backend bandwidth among concurrently-draining jobs.

    Installed onto a cluster's :class:`~repro.hardware.storage.LustreModel`
    via its ``arbiter`` field; the model calls :meth:`begin_burst` before
    timing a burst and :meth:`end_burst` with the finished report.
    """

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        #: end times of drain windows still believed active
        self._windows: list[float] = []
        self.bytes_written = 0
        self.bytes_read = 0
        self.write_bursts = 0
        self.read_bursts = 0
        #: most streams ever sharing the backend at one admission
        self.peak_streams = 1
        self._pending_streams = 1

    # ---------------------------------------------------- LustreModel hook

    def begin_burst(self, total_bytes: int, read: bool = False) -> int:
        """Admit a burst *now*; returns how many streams share the backend."""
        now = self.engine.now
        self._windows = [end for end in self._windows if end > now]
        streams = len(self._windows) + 1
        self._pending_streams = streams
        if streams > self.peak_streams:
            self.peak_streams = streams
        return streams

    def end_burst(self, report: WriteReport, read: bool = False) -> None:
        """Record the finished burst: open its window, tally its traffic."""
        self._windows.append(self.engine.now + report.max_time)
        if read:
            self.bytes_read += report.total_bytes
            self.read_bursts += 1
        else:
            self.bytes_written += report.total_bytes
            self.write_bursts += 1
        m = self.engine.metrics
        direction = "read" if read else "write"
        m.counter(f"facility.storage.{direction}_bytes").inc(report.total_bytes)
        m.histogram("facility.storage.burst_seconds").observe(report.max_time)
        m.gauge("facility.storage.peak_streams").set(self.peak_streams)

    # ------------------------------------------------------------- queries

    @property
    def active_streams(self) -> int:
        """Drain windows still open at the current virtual time."""
        now = self.engine.now
        return sum(1 for end in self._windows if end > now)

    @property
    def total_bytes(self) -> int:
        """All checkpoint/restart traffic moved through the backend."""
        return self.bytes_written + self.bytes_read
