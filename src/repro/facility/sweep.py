"""Facility sweep: scheduler policy × job mix, in parallel.

Each cell is a complete facility run — its own cluster, engine, workload —
built from primitive parameters inside the worker, so cells pickle cleanly
and the ``-j 1`` ≡ ``-j N`` byte-identity contract of
:func:`repro.harness.parallel.run_cells` holds for the whole sweep.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.facility.facility import Facility
from repro.facility.scheduler import POLICIES
from repro.facility.workload import MIXES, generate_jobs
from repro.harness.parallel import SweepCell, run_cells
from repro.harness.results import Table
from repro.hardware.cluster import make_cluster

#: default machine for sweep cells (small enough to keep queues deep)
SWEEP_NODES = 8
SWEEP_CORES = 16


def facility_cell(
    policy: str,
    mix: str,
    n_jobs: int,
    n_nodes: int,
    seed: int,
    ckpt_interval: Optional[float] = None,
) -> tuple:
    """One sweep point: run a whole facility, return its headline row.

    Module-level with primitive parameters — the picklability contract.
    """
    cluster = make_cluster(
        f"facility-{policy}-{mix}", n_nodes, cores_per_node=SWEEP_CORES,
        interconnect="aries", default_mpi="craympich",
    )
    specs = generate_jobs(mix, n_jobs, seed=seed)
    fac = Facility(cluster, scheduler=policy, seed=seed,
                   checkpoint_interval=ckpt_interval)
    fac.submit_all(specs)
    rep = fac.run()
    return (
        policy, mix, n_jobs,
        round(rep.makespan, 6),
        round(rep.utilization, 4),
        round(rep.node_hours_lost, 9),
        round(rep.mean_queue_wait, 6),
        rep.preemptions,
        rep.ckpt_traffic_bytes,
        rep.completed_jobs,
    )


def facility_sweep(
    policies: Sequence[str] = tuple(sorted(POLICIES)),
    mixes: Sequence[str] = MIXES,
    n_jobs: int = 40,
    n_nodes: int = SWEEP_NODES,
    seed: int = 0,
    ckpt_interval: Optional[float] = None,
    jobs: Optional[int] = None,
) -> Table:
    """Run every (policy × mix) facility and tabulate the outcomes.

    ``jobs`` is worker parallelism (cells, not tenants); results are merged
    in cell order so any ``jobs`` value yields an identical table.
    """
    cells = [
        SweepCell(
            fn=facility_cell,
            params=(policy, mix, n_jobs, n_nodes, seed, ckpt_interval),
            label=f"facility:{policy}:{mix}",
        )
        for policy in policies
        for mix in mixes
    ]
    rows = run_cells(cells, jobs=jobs)
    table = Table(
        title=f"facility sweep — {n_jobs} jobs on {n_nodes} nodes, seed {seed}",
        columns=["policy", "mix", "jobs", "makespan_s", "utilization",
                 "node_hours_lost", "mean_wait_s", "preemptions",
                 "ckpt_traffic_B", "completed"],
    )
    for row in rows:
        table.add(*row)
    table.notes.append(
        "each cell is an independent facility run (own cluster + engine); "
        "checkpoint traffic counts writes plus restart reads"
    )
    return table
