"""Facility-level accounting: the numbers an operations review asks for.

The :class:`FacilityReport` aggregates the per-job ledgers
(:class:`~repro.facility.spec.JobRecord`) and the storage arbiter's traffic
counters into the metrics the NERSC deployment papers report on: makespan,
machine utilization, node-hours lost to checkpoint/restart/crash overhead,
queue waits, and checkpoint traffic through the shared filesystem.

Glossary (also in docs/facility.md):

``makespan``
    virtual seconds from t=0 until the last job leaves the system;
``node-hours used``
    node-hours jobs held allocations for (work + overhead);
``node-hours lost``
    the overhead part: checkpoint protocol time, restart read/replay,
    and work redone after a crash — all multiplied by allocation width;
``utilization``
    (used − lost) / (nodes × makespan): the fraction of the machine that
    did useful application work.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.facility.spec import JobRecord, JobState
from repro.harness.results import Table, render_table

HOUR = 3600.0


@dataclass
class FacilityReport:
    """Aggregated outcome of one facility run."""

    policy: str
    seed: int
    n_nodes: int
    records: list[JobRecord]
    #: checkpoint bytes written through the shared backend
    bytes_written: int
    #: restart bytes read back
    bytes_read: int
    #: most drain streams ever sharing the backend at once
    peak_drain_streams: int

    # ------------------------------------------------------------ aggregates

    @property
    def n_jobs(self) -> int:
        """Total jobs ever submitted."""
        return len(self.records)

    @property
    def completed_jobs(self) -> int:
        """Jobs that ran to completion."""
        return sum(1 for r in self.records if r.state is JobState.COMPLETED)

    @property
    def failed_jobs(self) -> int:
        """Jobs that terminated without completing (unschedulable)."""
        return sum(1 for r in self.records if r.state is JobState.FAILED)

    @property
    def makespan(self) -> float:
        """Virtual time at which the last job went terminal."""
        ends = [r.end_time for r in self.records if r.end_time is not None]
        return max(ends) if ends else 0.0

    @property
    def node_hours_used(self) -> float:
        """Sum of every job's allocated node-seconds, in hours."""
        return sum(r.node_seconds_used for r in self.records) / HOUR

    @property
    def node_hours_lost(self) -> float:
        """Node-hours spent on checkpoint/restart/redone work."""
        return sum(r.node_seconds_lost for r in self.records) / HOUR

    @property
    def utilization(self) -> float:
        """Useful-work fraction of the whole machine over the makespan."""
        capacity = self.n_nodes * self.makespan / HOUR
        if capacity <= 0:
            return 0.0
        return max(0.0, self.node_hours_used - self.node_hours_lost) / capacity

    @property
    def total_queue_wait(self) -> float:
        """Sum of all jobs' first-start queue waits, seconds."""
        return sum(r.queue_wait for r in self.records)

    @property
    def mean_queue_wait(self) -> float:
        """Mean queue wait over jobs that ever started."""
        waits = [r.queue_wait for r in self.records if r.first_start is not None]
        return sum(waits) / len(waits) if waits else 0.0

    @property
    def max_queue_wait(self) -> float:
        """Worst single queue wait, seconds."""
        return max((r.queue_wait for r in self.records), default=0.0)

    @property
    def preemptions(self) -> int:
        """Total scheduler-induced checkpoint+kill events."""
        return sum(r.preemptions for r in self.records)

    @property
    def crashes(self) -> int:
        """Total node-crash hits absorbed across all jobs."""
        return sum(r.crashes for r in self.records)

    @property
    def checkpoints(self) -> int:
        """Total checkpoint images saved (induced + periodic)."""
        return sum(r.checkpoints for r in self.records)

    @property
    def restarts(self) -> int:
        """Total restarts from a saved image."""
        return sum(r.restarts for r in self.records)

    @property
    def ckpt_traffic_bytes(self) -> int:
        """Checkpoint bytes written plus restart bytes read."""
        return self.bytes_written + self.bytes_read

    # -------------------------------------------------------------- rendering

    def job_table(self, limit: Optional[int] = None) -> Table:
        """Per-job rows (truncated to ``limit`` when the queue is huge)."""
        t = Table(
            title=f"facility jobs ({self.policy}, seed {self.seed})",
            columns=["job", "state", "wait_s", "preempt", "crash",
                     "restart", "ckpts", "turnaround_s"],
        )
        rows = self.records if limit is None else self.records[:limit]
        for r in rows:
            t.add(
                r.spec.name, r.state.value, round(r.queue_wait, 4),
                r.preemptions, r.crashes, r.restarts, r.checkpoints,
                None if r.turnaround is None else round(r.turnaround, 4),
            )
        if limit is not None and len(self.records) > limit:
            t.notes.append(f"... {len(self.records) - limit} more jobs")
        return t

    def summary_table(self) -> Table:
        """The headline aggregates as one key/value table."""
        t = Table(
            title=f"facility summary — policy={self.policy} "
                  f"nodes={self.n_nodes} jobs={self.n_jobs}",
            columns=["metric", "value"],
        )
        t.add("completed jobs", f"{self.completed_jobs}/{self.n_jobs}")
        t.add("failed (unschedulable)", self.failed_jobs)
        t.add("makespan (s)", round(self.makespan, 4))
        t.add("utilization", round(self.utilization, 4))
        t.add("node-hours used", round(self.node_hours_used, 6))
        t.add("node-hours lost", round(self.node_hours_lost, 6))
        t.add("queue wait mean (s)", round(self.mean_queue_wait, 4))
        t.add("queue wait max (s)", round(self.max_queue_wait, 4))
        t.add("preemptions", self.preemptions)
        t.add("checkpoints", self.checkpoints)
        t.add("restarts", self.restarts)
        t.add("node crashes survived", self.crashes)
        t.add("ckpt bytes written", self.bytes_written)
        t.add("restart bytes read", self.bytes_read)
        t.add("peak drain streams", self.peak_drain_streams)
        return t

    def summary(self) -> str:
        """Rendered headline table."""
        return render_table(self.summary_table())

    def as_dict(self) -> dict:
        """JSON-friendly aggregate view (per-job detail elided)."""
        return {
            "policy": self.policy,
            "seed": self.seed,
            "n_nodes": self.n_nodes,
            "n_jobs": self.n_jobs,
            "completed_jobs": self.completed_jobs,
            "failed_jobs": self.failed_jobs,
            "makespan_s": self.makespan,
            "utilization": self.utilization,
            "node_hours_used": self.node_hours_used,
            "node_hours_lost": self.node_hours_lost,
            "mean_queue_wait_s": self.mean_queue_wait,
            "max_queue_wait_s": self.max_queue_wait,
            "preemptions": self.preemptions,
            "crashes": self.crashes,
            "checkpoints": self.checkpoints,
            "restarts": self.restarts,
            "ckpt_bytes_written": self.bytes_written,
            "ckpt_bytes_read": self.bytes_read,
            "peak_drain_streams": self.peak_drain_streams,
        }

    def to_json(self) -> str:
        """The full report as a stable JSON document."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)
