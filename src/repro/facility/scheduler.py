"""Scheduling policies: who runs next, and who gets preempted for it.

Both policies order the queue by ``(-priority, submit_time, job_id)`` and
differ only in how they treat a head job that does not fit:

* :class:`FifoScheduler` blocks — strict submission order, nothing younger
  may overtake the head (head-of-line blocking and all);
* :class:`BackfillScheduler` skips it and admits any later job that fits
  right now (first-fit backfill without reservations — the aggressive
  variant; see docs/facility.md for why no-reservation is acceptable when
  preemption bounds the head job's wait).

Preemption is policy-independent: when the highest-priority pending job
cannot start, both policies checkpoint-and-requeue the cheapest set of
strictly-lower-priority running jobs that frees enough nodes (Algorithm 2
makes that a loss-free SIGTERM).  The selection is deterministic —
lowest priority first, then most recently started, then highest job id —
so a seeded facility run replays identically.
"""

from __future__ import annotations

from typing import Optional

from repro.facility.spec import JobRecord


def queue_order(records: list[JobRecord]) -> list[JobRecord]:
    """Canonical queue ordering: priority first, then submission order."""
    return sorted(
        records,
        key=lambda r: (-r.spec.priority, r.spec.submit_time, r.spec.job_id),
    )


class SchedulerPolicy:
    """Interface: pure decisions over job records, no facility state."""

    name = "policy"

    def select(self, pending: list[JobRecord], free_nodes: int) -> list[JobRecord]:
        """Jobs to start now, in start order, fitting ``free_nodes``."""
        raise NotImplementedError

    def preemption_plan(
        self,
        pending: list[JobRecord],
        running: list[tuple[JobRecord, int, float]],
        free_nodes: int,
        incoming_nodes: int = 0,
    ) -> Optional[tuple[JobRecord, list[JobRecord]]]:
        """Whom to checkpoint-preempt so the queue head can start.

        ``running`` carries ``(record, n_nodes, start_time)`` for every
        preemptible running job; ``incoming_nodes`` counts nodes already
        being freed by in-flight preemptions (never preempt for capacity
        that is already on its way).  Returns ``(beneficiary, victims)``
        or None.  Only the single highest-priority blocked job is
        considered per scheduling round — no preemption cascades.
        """
        if not pending:
            return None
        cand = queue_order(pending)[0]
        needed = cand.spec.n_nodes - free_nodes - incoming_nodes
        if needed <= 0:
            # fits once in-flight preemptions drain; nothing new to kill
            return None
        victims_pool = [
            (rec, n, t0) for rec, n, t0 in running
            if rec.spec.priority < cand.spec.priority
        ]
        # cheapest evictions first: lowest priority, then the job that
        # has the least sunk work (started most recently)
        victims_pool.sort(key=lambda v: (v[0].spec.priority, -v[2],
                                         -v[0].spec.job_id))
        chosen: list[JobRecord] = []
        freed = 0
        for rec, n, _t0 in victims_pool:
            chosen.append(rec)
            freed += n
            if freed >= needed:
                return cand, chosen
        return None  # even evicting everything eligible is not enough


class FifoScheduler(SchedulerPolicy):
    """Strict queue order; the head blocks the machine until it fits."""

    name = "fifo"

    def select(self, pending: list[JobRecord], free_nodes: int) -> list[JobRecord]:
        """Admit in queue order, stopping at the first job that does not fit."""
        out: list[JobRecord] = []
        for rec in queue_order(pending):
            if rec.spec.n_nodes > free_nodes:
                break
            out.append(rec)
            free_nodes -= rec.spec.n_nodes
        return out


class BackfillScheduler(SchedulerPolicy):
    """First-fit backfill: skip what does not fit, admit whatever does."""

    name = "backfill"

    def select(self, pending: list[JobRecord], free_nodes: int) -> list[JobRecord]:
        """Admit every queued job that fits right now, in queue order."""
        out: list[JobRecord] = []
        for rec in queue_order(pending):
            if free_nodes <= 0:
                break
            if rec.spec.n_nodes > free_nodes:
                continue
            out.append(rec)
            free_nodes -= rec.spec.n_nodes
        return out


POLICIES: dict[str, type[SchedulerPolicy]] = {
    FifoScheduler.name: FifoScheduler,
    BackfillScheduler.name: BackfillScheduler,
}


def make_scheduler(name: str) -> SchedulerPolicy:
    """Instantiate a policy by name (``fifo`` or ``backfill``)."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler policy {name!r}; known: {sorted(POLICIES)}"
        ) from None
