"""Job specifications and queue records for the multi-tenant facility.

A :class:`JobSpec` is what a user submits (``sbatch``): which application,
how many ranks, how many whole nodes, a priority.  A :class:`JobRecord` is
the facility's mutable accounting sheet for that submission — state,
allocation, accumulated queue wait, node-seconds of useful work and of
overhead, the newest saved checkpoint.  Records survive preemptions and
crash-requeues; the underlying :class:`~repro.mana.job.ManaJob` does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.mana.checkpoint_image import CheckpointSet


class JobState(Enum):
    """Lifecycle of one submission inside the facility."""

    #: submitted but not yet arrived (its submit_time lies in the future);
    #: the scheduler must not see it
    HELD = "held"
    #: waiting in the queue (from arrival, and again after every requeue)
    PENDING = "pending"
    #: allocated and executing (includes restart read/replay)
    RUNNING = "running"
    #: selected for preemption; the induced checkpoint is in flight
    PREEMPTING = "preempting"
    #: finished normally; final state fingerprint recorded
    COMPLETED = "completed"
    #: permanently unschedulable (asks for more nodes than survive)
    FAILED = "failed"


#: states from which a record never leaves
TERMINAL_STATES = frozenset({JobState.COMPLETED, JobState.FAILED})


@dataclass(frozen=True)
class JobSpec:
    """One submission: the immutable request the scheduler reasons about."""

    job_id: int
    app: str
    n_ranks: int
    #: whole nodes to allocate (facility scheduling is node-granular, like
    #: Cori's); ranks are spread evenly across them at launch
    n_nodes: int
    n_steps: int
    #: larger = more important; a pending job may preempt strictly
    #: lower-priority running ones
    priority: int = 0
    #: virtual time at which the job enters the queue
    submit_time: float = 0.0
    #: MPI implementation override (None = facility cluster default)
    mpi: Optional[str] = None
    #: per-rank modeled memory override (None = the app's default; workload
    #: mixes cap this to keep checkpoint sizes proportionate to tiny jobs)
    mem_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_ranks <= 0:
            raise ValueError(f"job {self.job_id}: need ranks > 0, got {self.n_ranks}")
        if self.n_nodes <= 0 or self.n_nodes > self.n_ranks:
            raise ValueError(
                f"job {self.job_id}: need 0 < n_nodes <= n_ranks, "
                f"got {self.n_nodes} nodes for {self.n_ranks} ranks"
            )
        if self.submit_time < 0:
            raise ValueError(f"job {self.job_id}: negative submit_time")

    @property
    def name(self) -> str:
        """Human-readable identity used in traces and cluster-slice names."""
        return f"job{self.job_id:04d}-{self.app}x{self.n_ranks}"


@dataclass
class JobRecord:
    """Mutable facility-side accounting for one :class:`JobSpec`."""

    spec: JobSpec
    state: JobState = JobState.HELD
    #: set while PENDING: when the current wait began
    queued_since: Optional[float] = None
    #: accumulated seconds spent waiting in the queue (across requeues)
    queue_wait: float = 0.0
    #: first time the job was allocated (None until then)
    first_start: Optional[float] = None
    #: time the record went terminal
    end_time: Optional[float] = None
    #: node-seconds the job held an allocation (work + overhead)
    node_seconds_used: float = 0.0
    #: node-seconds of pure overhead: checkpoint protocol time, restart
    #: read/replay time, and work redone after a crash
    node_seconds_lost: float = 0.0
    #: times the scheduler checkpoint-preempted this job
    preemptions: int = 0
    #: node crashes that took this job down
    crashes: int = 0
    #: restarts from a checkpoint (preemption resumes + crash recoveries)
    restarts: int = 0
    #: coordinated checkpoints completed (induced + periodic)
    checkpoints: int = 0
    #: newest saved checkpoint; requeued jobs restart from it
    ckpt: Optional[CheckpointSet] = field(default=None, repr=False)
    #: facility time at which :attr:`ckpt` finished writing
    ckpt_saved_at: Optional[float] = None
    #: SHA-256 over the final application state (set on completion)
    fingerprint: Optional[str] = None
    #: why the job went FAILED (empty otherwise)
    failure_reason: str = ""

    @property
    def terminal(self) -> bool:
        """True once the record can never change again."""
        return self.state in TERMINAL_STATES

    @property
    def turnaround(self) -> Optional[float]:
        """Submit-to-finish wall time (None until terminal)."""
        if self.end_time is None:
            return None
        return self.end_time - self.spec.submit_time
