"""repro.facility: a multi-tenant checkpoint facility on one virtual clock.

The subsystem that turns "one MANA job per engine" into "a machine room per
engine": a shared cluster, a preemptive scheduler whose eviction mechanism
is the coordinated checkpoint of Algorithm 2, shared-Lustre bandwidth
contention between concurrently-draining tenants, and facility-level
accounting (node-hours lost, queue waits, checkpoint traffic, utilization).

Entry points: build a :class:`Facility`, :meth:`~Facility.submit_all` a
workload from :func:`~repro.facility.workload.generate_jobs`, then
:meth:`~Facility.run` — or sweep policies × mixes with
:func:`~repro.facility.sweep.facility_sweep`.
"""

from repro.facility.facility import Facility, FacilityError
from repro.facility.metrics import FacilityReport
from repro.facility.scheduler import (
    BackfillScheduler,
    FifoScheduler,
    SchedulerPolicy,
    make_scheduler,
)
from repro.facility.sharedfs import StorageArbiter
from repro.facility.spec import JobRecord, JobSpec, JobState
from repro.facility.sweep import facility_cell, facility_sweep
from repro.facility.workload import generate_jobs

__all__ = [
    "BackfillScheduler",
    "Facility",
    "FacilityError",
    "FacilityReport",
    "FifoScheduler",
    "JobRecord",
    "JobSpec",
    "JobState",
    "SchedulerPolicy",
    "StorageArbiter",
    "facility_cell",
    "facility_sweep",
    "generate_jobs",
    "make_scheduler",
]
