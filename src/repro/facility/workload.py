"""Seeded job-mix generators: the facility's synthetic workloads.

Each mix draws every stochastic choice (app, size, steps, arrival gap,
priority) from its own named :class:`~repro.simtime.rng.RngStreams` stream,
so a ``(mix, n_jobs, seed)`` triple always produces the identical list of
:class:`~repro.facility.spec.JobSpec` — the determinism the facility sweep
and the ``-j 1`` ≡ ``-j N`` contract rely on.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps.base import get_app
from repro.facility.spec import JobSpec
from repro.simtime.rng import RngStreams

MB = 1 << 20

#: apps light enough to queue by the hundreds (lulesh exercises the
#: non-power-of-two ``valid_ranks`` hook)
DEFAULT_APPS: tuple[str, ...] = ("gromacs", "hpcg", "lulesh")

#: known mixes (see docs/facility.md for the glossary)
MIXES: tuple[str, ...] = ("tiny", "mixed", "priority")


def _pick(rng, seq):
    """Deterministically pick one element of ``seq``."""
    return seq[int(rng.integers(0, len(seq)))]


def generate_jobs(
    mix: str,
    n_jobs: int,
    seed: int = 0,
    apps: Sequence[str] = DEFAULT_APPS,
    max_nodes: int = 4,
    mem_cap_mb: Optional[int] = 96,
) -> list[JobSpec]:
    """Build the job list for one facility run.

    ``tiny``
        single-node 1–2-rank jobs, all submitted at t=0 (a queue flush —
        the ≥100-job acceptance scenario);
    ``mixed``
        node counts up to ``max_nodes``, staggered Poisson-ish arrivals,
        uniform priority — exercises backfill;
    ``priority``
        a ``mixed`` base at priority 0 plus ~20% high-priority jobs
        arriving mid-run — forces checkpoint-preemption.
    """
    if mix not in MIXES:
        raise ValueError(f"unknown mix {mix!r}; known: {list(MIXES)}")
    if n_jobs <= 0:
        raise ValueError(f"need n_jobs > 0, got {n_jobs}")
    streams = RngStreams(seed)
    rng = streams.stream(f"facility.workload/{mix}")
    mem_cap = None if mem_cap_mb is None else mem_cap_mb * MB

    specs: list[JobSpec] = []
    arrival = 0.0
    for job_id in range(n_jobs):
        app_name = _pick(rng, list(apps))
        app = get_app(app_name)
        if mix == "tiny":
            n_nodes = 1
            want_ranks = int(rng.integers(1, 3))
            submit = 0.0
            priority = 0
            n_steps = int(rng.integers(2, 4))
        else:
            n_nodes = _pick(rng, [1, 1, 2, min(4, max_nodes), max_nodes])
            want_ranks = n_nodes * int(rng.integers(2, 5))
            # arrivals outpace service so the machine stays saturated and
            # backfill has holes to fill
            arrival += float(rng.exponential(0.002))
            submit = round(arrival, 6)
            priority = 0
            n_steps = int(rng.integers(4, 13))
            if mix == "priority" and rng.random() < 0.2:
                # wide urgent jobs arriving into a full machine: the case
                # that forces checkpoint-preemption of running tenants
                priority = 1
                n_nodes = max_nodes
                want_ranks = n_nodes * int(rng.integers(2, 5))
        # respect the app's rank-count constraint (lulesh wants cubes) while
        # still covering every allocated node
        want = max(want_ranks, n_nodes)
        n_ranks = app.valid_ranks(want)
        while n_ranks < n_nodes:
            want *= 2
            n_ranks = app.valid_ranks(want)
        mem = None
        if mem_cap is not None:
            mem = min(app.default_config.mem_bytes, mem_cap)
        specs.append(JobSpec(
            job_id=job_id, app=app_name, n_ranks=n_ranks, n_nodes=n_nodes,
            n_steps=n_steps, priority=priority, submit_time=submit,
            mem_bytes=mem,
        ))
    return specs
