"""The facility: many MANA jobs, one cluster, one virtual-time engine.

This is the machine-room view the paper's deployment story implies: a
shared :class:`~repro.hardware.cluster.Cluster` whose nodes are handed out
whole to tenants, a :class:`~repro.facility.scheduler.SchedulerPolicy`
deciding who runs, and checkpoint/restart as the scheduler's workhorse —
preemption is "induce a coordinated checkpoint (Algorithm 2), SIGKILL the
job, give the nodes away, restart it later from its images".

Every tenant is an ordinary :class:`~repro.mana.job.ManaJob` launched with
``engine=<the facility engine>`` onto a *slice* cluster that shares the
facility's node, storage and filesystem objects — so node ids stay
facility-global, Lustre bandwidth is contended through the
:class:`~repro.facility.sharedfs.StorageArbiter`, and a node crash lands on
whichever tenant owns the node at that instant.

The whole thing is event-driven: scheduling points are job arrival, job
completion, preemption-checkpoint completion, and node crash.  There is no
polling loop, so a facility run costs what its jobs cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from typing import Optional, Sequence, Union
from zlib import crc32

from repro.apps.base import get_app
from repro.conformance.oracles import state_fingerprint
from repro.facility.metrics import FacilityReport
from repro.facility.scheduler import SchedulerPolicy, make_scheduler
from repro.facility.sharedfs import StorageArbiter
from repro.facility.spec import JobRecord, JobSpec, JobState
from repro.faults.models import (
    Fault,
    FaultModel,
    NetworkDegradation,
    NodeCrash,
    SlowIO,
)
from repro.hardware.cluster import Cluster
from repro.mana.coordinator import (
    CheckpointAborted,
    CheckpointReport,
    ControlPlaneModel,
)
from repro.mana.job import ManaJob, launch_mana, restart
from repro.mana.split_process import fixed_upper_bytes
from repro.obs.events import Category
from repro.simtime import Engine

MB = 1 << 20


class FacilityError(RuntimeError):
    """A facility-level invariant broke (stuck queue, bad configuration)."""


@dataclass
class _Tenant:
    """One live allocation: a record bound to a running ManaJob."""

    record: JobRecord
    job: ManaJob
    nodes: tuple[int, ...]
    alloc_start: float
    #: True once the application is actually executing (post-replay)
    live: bool = False
    #: when it went live (lost-work baselines start here, not at alloc)
    live_at: Optional[float] = None
    #: a coordinated checkpoint (periodic or induced) is in flight
    ckpt_busy: bool = False
    #: preemption decided while the tenant could not be checkpointed yet
    preempt_deferred: bool = False
    #: torn down (freed / requeued); late callbacks must be ignored
    gone: bool = False
    auto_handle: object = field(default=None, repr=False)


class Facility:
    """Hosts many concurrent MANA jobs on one cluster and one engine."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Union[str, SchedulerPolicy] = "fifo",
        engine: Optional[Engine] = None,
        seed: int = 0,
        checkpoint_interval: Optional[float] = None,
        faults: Optional[FaultModel] = None,
        fault_horizon: float = inf,
        control: Optional[ControlPlaneModel] = None,
        stragglers: bool = True,
        protocol: str = "alg2",
        shards: Optional[int] = None,
        compact: bool = False,
    ) -> None:
        if engine is not None:
            self.engine = engine
        elif shards is not None and shards > 1:
            from repro.harness.partition import make_sharded_engine

            self.engine = make_sharded_engine(cluster, shards)
        else:
            self.engine = Engine()
        self.cluster = cluster
        self.scheduler = (
            scheduler if isinstance(scheduler, SchedulerPolicy)
            else make_scheduler(scheduler)
        )
        self.seed = int(seed)
        self.checkpoint_interval = checkpoint_interval
        self.control = control
        self.stragglers = stragglers
        #: checkpoint protocol engine for induced (preemption/interval)
        #: checkpoints of every tenant (docs/protocols.md)
        self.protocol = protocol
        #: compact every tenant's record-replay log at checkpoint time
        #: (docs/record_replay.md)
        self.compact = compact
        #: shared-backend contention + the storage traffic ledger
        self.arbiter = StorageArbiter(self.engine)
        cluster.storage.arbiter = self.arbiter
        self.records: list[JobRecord] = []
        self._by_id: dict[int, JobRecord] = {}
        self._tenants: dict[int, _Tenant] = {}
        #: node id -> owning job id
        self._allocated: dict[int, int] = {}
        self._faults = faults
        self._fault_horizon = fault_horizon
        self._fault_handle = None
        self._ran = False

    # ------------------------------------------------------------ submission

    def submit(self, spec: JobSpec) -> JobRecord:
        """Queue one job; it arrives at ``spec.submit_time``."""
        if spec.job_id in self._by_id:
            raise FacilityError(f"duplicate job id {spec.job_id}")
        rec = JobRecord(spec=spec)
        self.records.append(rec)
        self._by_id[spec.job_id] = rec
        self.engine.call_at(
            max(spec.submit_time, self.engine.now), self._arrive, rec,
            label=f"facility:submit:{spec.name}",
        )
        return rec

    def submit_all(self, specs: Sequence[JobSpec]) -> list[JobRecord]:
        """Queue a whole workload."""
        return [self.submit(s) for s in specs]

    # ------------------------------------------------------------- execution

    def run(self, until: float = inf) -> FacilityReport:
        """Drive the shared engine until the workload drains; returns the
        facility report.  Raises :class:`FacilityError` if jobs remain
        non-terminal with no events pending (a stuck queue)."""
        if self._faults is not None:
            self._arm_next_fault()
        self.engine.run(until=until)
        stuck = [r for r in self.records if not r.terminal]
        if stuck and until == inf:
            names = ", ".join(f"{r.spec.name}@{r.state.value}" for r in stuck[:8])
            raise FacilityError(f"facility queue stuck: {names}")
        self._ran = True
        return self.report()

    def report(self) -> FacilityReport:
        """Snapshot the facility-level metrics."""
        return FacilityReport(
            policy=self.scheduler.name,
            seed=self.seed,
            n_nodes=self.cluster.node_count,
            records=list(self.records),
            bytes_written=self.arbiter.bytes_written,
            bytes_read=self.arbiter.bytes_read,
            peak_drain_streams=self.arbiter.peak_streams,
        )

    # ----------------------------------------------------------- scheduling

    def _free_node_ids(self) -> list[int]:
        return sorted(
            n.node_id for n in self.cluster.nodes
            if not n.failed and n.node_id not in self._allocated
        )

    def _schedule(self) -> None:
        free = self._free_node_ids()
        healthy_total = sum(1 for n in self.cluster.nodes if not n.failed)
        pending = []
        for rec in self.records:
            if rec.state is not JobState.PENDING:
                continue
            if rec.spec.n_nodes > healthy_total:
                self._fail(rec, f"needs {rec.spec.n_nodes} nodes, "
                                f"{healthy_total} survive")
                continue
            pending.append(rec)
        for rec in self.scheduler.select(pending, len(free)):
            take, free = free[:rec.spec.n_nodes], free[rec.spec.n_nodes:]
            self._start(rec, take)
        still = [r for r in pending if r.state is JobState.PENDING]
        if not still:
            self._maybe_finish()
            return
        running = [
            (t.record, len(t.nodes), t.alloc_start)
            for t in self._tenants.values()
            if t.record.state is JobState.RUNNING
        ]
        incoming = sum(
            len(t.nodes) for t in self._tenants.values()
            if t.record.state is JobState.PREEMPTING
        )
        plan = self.scheduler.preemption_plan(still, running, len(free), incoming)
        if plan is not None:
            beneficiary, victims = plan
            for victim in victims:
                self._preempt(self._tenants[victim.spec.job_id],
                              for_job=beneficiary)

    def _fail(self, rec: JobRecord, reason: str) -> None:
        rec.state = JobState.FAILED
        rec.failure_reason = reason
        rec.end_time = self.engine.now
        if rec.queued_since is not None:
            rec.queue_wait += self.engine.now - rec.queued_since
            rec.queued_since = None
        self.engine.metrics.counter("facility.jobs_failed").inc()
        tr = self.engine.tracer
        if tr.enabled:
            tr.instant("facility:unschedulable", cat=Category.FACILITY,
                       job=rec.spec.name, reason=reason)

    # ------------------------------------------------------------ job start

    def _arrive(self, rec: JobRecord) -> None:
        rec.state = JobState.PENDING
        rec.queued_since = self.engine.now
        m = self.engine.metrics
        m.counter("facility.jobs_submitted").inc()
        m.gauge("facility.queue_depth").set(sum(
            1 for r in self.records if r.state is JobState.PENDING
        ) + 1)
        tr = self.engine.tracer
        if tr.enabled:
            tr.instant("facility:submit", cat=Category.FACILITY,
                       job=rec.spec.name, nodes=rec.spec.n_nodes)
        self._schedule()

    def _attempt_seed(self, rec: JobRecord) -> int:
        """Deterministic straggler seed per (facility seed, job, attempt)."""
        key = f"{self.seed}/{rec.spec.job_id}/{rec.restarts}/{rec.crashes}"
        return crc32(key.encode()) & 0x7FFFFFFF

    def _start(self, rec: JobRecord, node_ids: list[int]) -> None:
        spec = rec.spec
        now = self.engine.now
        rec.state = JobState.RUNNING
        if rec.queued_since is not None:
            rec.queue_wait += now - rec.queued_since
            rec.queued_since = None
        if rec.first_start is None:
            rec.first_start = now
        for nid in node_ids:
            self._allocated[nid] = spec.job_id

        slice_cluster = Cluster(
            name=f"{self.cluster.name}:{spec.name}",
            nodes=[self.cluster.node(nid) for nid in node_ids],
            interconnect=self.cluster.interconnect,
            storage=self.cluster.storage,
            fs=self.cluster.fs,
            default_mpi=spec.mpi or self.cluster.default_mpi,
        )
        app = get_app(spec.app)
        overrides = {"n_steps": spec.n_steps}
        if spec.mem_bytes is not None:
            overrides["mem_bytes"] = spec.mem_bytes
        cfg = app.default_config.scaled(**overrides)
        factory = app.build(cfg)
        fixed = fixed_upper_bytes()

        def app_data(rank: int) -> int:
            return max(MB, app.memory_bytes(cfg, rank, spec.n_ranks) - fixed)

        seed = self._attempt_seed(rec)
        if rec.ckpt is None:
            job = launch_mana(
                slice_cluster, factory, spec.n_ranks, ranks_per_node=None,
                mpi=spec.mpi, engine=self.engine, app_mem_bytes=app_data,
                seed=seed, control=self.control, stragglers=self.stragglers,
                protocol=self.protocol, compact=self.compact,
            )
        else:
            job = restart(
                rec.ckpt, slice_cluster, factory, ranks_per_node=None,
                mpi=spec.mpi, engine=self.engine, seed=seed,
                control=self.control, stragglers=self.stragglers,
                protocol=self.protocol, compact=self.compact,
            )
            rec.restarts += 1
        tenant = _Tenant(record=rec, job=job, nodes=tuple(node_ids),
                         alloc_start=now)
        self._tenants[spec.job_id] = tenant
        job.resumed.on_done(lambda _v: self._on_live(tenant))
        job.finished.on_done(lambda _v: self._on_complete(tenant))

        m = self.engine.metrics
        m.counter("facility.jobs_started").inc()
        m.histogram("facility.queue_wait_seconds").observe(rec.queue_wait)
        tr = self.engine.tracer
        if tr.enabled:
            tr.instant("facility:start", cat=Category.FACILITY,
                       job=spec.name, nodes=list(node_ids),
                       from_ckpt=rec.ckpt is not None)
        if rec.ckpt is None:
            job.start()

    def _on_live(self, tenant: _Tenant) -> None:
        """The tenant's application is executing (post-replay for restarts)."""
        if tenant.gone:
            return
        tenant.live = True
        tenant.live_at = self.engine.now
        rec = tenant.record
        rr = tenant.job.restart_report
        if rr is not None:
            # restart read + replay + init is pure overhead on every node
            rec.node_seconds_lost += rr.total_time * len(tenant.nodes)
        if rec.state is JobState.PREEMPTING and tenant.preempt_deferred:
            tenant.preempt_deferred = False
            self._begin_preemption_ckpt(tenant)
        elif self.checkpoint_interval is not None:
            self._arm_auto_ckpt(tenant)

    # ------------------------------------------------------------ completion

    def _on_complete(self, tenant: _Tenant) -> None:
        if tenant.gone:
            return
        rec = tenant.record
        now = self.engine.now
        rec.fingerprint = state_fingerprint(tenant.job.states)
        rec.state = JobState.COMPLETED
        rec.end_time = now
        self._teardown(tenant)
        m = self.engine.metrics
        m.counter("facility.jobs_completed").inc()
        tr = self.engine.tracer
        if tr.enabled:
            tr.instant("facility:complete", cat=Category.FACILITY,
                       job=rec.spec.name)
        self._schedule()

    def _teardown(self, tenant: _Tenant) -> None:
        """Kill the tenant's job, free its nodes, settle node-time books."""
        tenant.gone = True
        if tenant.auto_handle is not None:
            tenant.auto_handle.cancel()
            tenant.auto_handle = None
        tenant.job.kill()
        now = self.engine.now
        rec = tenant.record
        rec.node_seconds_used += (now - tenant.alloc_start) * len(tenant.nodes)
        for nid in tenant.nodes:
            if self._allocated.get(nid) == rec.spec.job_id:
                del self._allocated[nid]
        del self._tenants[rec.spec.job_id]

    def _maybe_finish(self) -> None:
        if self._fault_handle is not None and all(
            r.terminal for r in self.records
        ):
            # the workload drained: stop arming faults or an open-ended
            # Poisson model would keep the engine alive forever
            self._fault_handle.cancel()
            self._fault_handle = None

    # ------------------------------------------------------------ preemption

    def _preempt(self, tenant: _Tenant, for_job: JobRecord) -> None:
        rec = tenant.record
        if rec.state is not JobState.RUNNING or tenant.gone:
            return
        rec.state = JobState.PREEMPTING
        self.engine.metrics.counter("facility.preemptions").inc()
        tr = self.engine.tracer
        if tr.enabled:
            tr.instant("facility:preempt", cat=Category.FACILITY,
                       job=rec.spec.name, beneficiary=for_job.spec.name)
        if not tenant.live or tenant.ckpt_busy:
            # mid-replay or mid-periodic-checkpoint: the induced checkpoint
            # starts (or the periodic one is reused) as soon as possible
            tenant.preempt_deferred = True
            return
        self._begin_preemption_ckpt(tenant)

    def _begin_preemption_ckpt(self, tenant: _Tenant) -> None:
        tenant.ckpt_busy = True
        done = tenant.job.coordinator.request_checkpoint()
        done.on_done(lambda res: self._preempt_ckpt_done(tenant, res))

    def _preempt_ckpt_done(self, tenant: _Tenant, result) -> None:
        tenant.ckpt_busy = False
        rec = tenant.record
        if tenant.gone or rec.state is not JobState.PREEMPTING:
            return
        if isinstance(result, CheckpointAborted):
            # a node crashed under the preemption checkpoint; the crash
            # handler requeues from the last *saved* checkpoint instead
            return
        self._save_checkpoint(tenant, result)
        self._requeue_preempted(tenant)

    def _save_checkpoint(self, tenant: _Tenant, report: CheckpointReport) -> None:
        rec = tenant.record
        rec.ckpt = report.ckpt_set
        rec.ckpt_saved_at = self.engine.now
        rec.checkpoints += 1
        # protocol + drain + write time burned on every allocated node
        rec.node_seconds_lost += report.total_time * len(tenant.nodes)

    def _requeue_preempted(self, tenant: _Tenant) -> None:
        rec = tenant.record
        rec.preemptions += 1
        self._teardown(tenant)
        rec.state = JobState.PENDING
        rec.queued_since = self.engine.now
        self.engine.metrics.counter("facility.requeues").inc()
        tr = self.engine.tracer
        if tr.enabled:
            tr.instant("facility:requeue", cat=Category.FACILITY,
                       job=rec.spec.name)
        self._schedule()

    # ------------------------------------------------------- periodic ckpts

    def _arm_auto_ckpt(self, tenant: _Tenant) -> None:
        tenant.auto_handle = self.engine.call_after(
            self.checkpoint_interval, self._auto_ckpt, tenant,
            label=f"facility:auto-ckpt:{tenant.record.spec.name}",
        )

    def _auto_ckpt(self, tenant: _Tenant) -> None:
        tenant.auto_handle = None
        rec = tenant.record
        if tenant.gone or rec.state is not JobState.RUNNING:
            return
        if tenant.ckpt_busy or tenant.job.finished.done:
            self._arm_auto_ckpt(tenant)
            return
        tenant.ckpt_busy = True
        done = tenant.job.coordinator.request_checkpoint()
        done.on_done(lambda res: self._auto_ckpt_done(tenant, res))

    def _auto_ckpt_done(self, tenant: _Tenant, result) -> None:
        tenant.ckpt_busy = False
        rec = tenant.record
        if tenant.gone:
            return
        if isinstance(result, CheckpointAborted):
            return  # the crash handler owns recovery
        self._save_checkpoint(tenant, result)
        if rec.state is JobState.PREEMPTING:
            # a preemption was decided mid-checkpoint; this image serves it
            tenant.preempt_deferred = False
            self._requeue_preempted(tenant)
            return
        self._arm_auto_ckpt(tenant)

    # ----------------------------------------------------------------- faults

    def _arm_next_fault(self) -> None:
        fault = self._faults.next_fault(self.engine.now)
        if fault is None or fault.time > self._fault_horizon:
            self._fault_handle = None
            return
        self._fault_handle = self.engine.call_at(
            fault.time, self._fire_fault, fault,
            label=f"facility:fault@{fault.time:g}",
        )

    def _fire_fault(self, fault: Fault) -> None:
        self._fault_handle = None
        tr = self.engine.tracer
        if tr.enabled:
            args: dict = {"kind": type(fault).__name__}
            if isinstance(fault, NodeCrash):
                args["nodes"] = list(fault.nodes)
            tr.instant("facility:fault", cat=Category.FAULT, **args)
        self.engine.metrics.counter(
            "faults.injected", kind=type(fault).__name__
        ).inc()
        self.apply_fault(fault)
        self._arm_next_fault()

    def apply_fault(self, fault: Fault) -> None:
        """Apply one fault to the shared machine right now."""
        if isinstance(fault, NodeCrash):
            self._crash_nodes(fault.nodes)
        elif isinstance(fault, SlowIO):
            storage = self.cluster.storage
            storage.degrade(fault.factor)
            self.engine.call_after(fault.duration, storage.restore,
                                   label="facility:io-restore")
        elif isinstance(fault, NetworkDegradation):
            # every tenant fabric browns out (a facility-wide event; jobs
            # launched during the window keep nominal fabrics — documented
            # simplification)
            for tenant in list(self._tenants.values()):
                fabric = tenant.job.world.fabric
                fabric.degrade(alpha_mult=fault.alpha_mult,
                               beta_mult=1.0 / fault.beta_mult)
                self.engine.call_after(fault.duration, fabric.restore,
                                       label="facility:net-restore")
        else:
            raise TypeError(f"unknown fault kind: {type(fault).__name__}")

    def _crash_nodes(self, node_ids: Sequence[int]) -> None:
        doomed: dict[int, list[int]] = {}
        now = self.engine.now
        for nid in node_ids:
            node = next(
                (n for n in self.cluster.nodes if n.node_id == nid), None
            )
            if node is None or node.failed:
                continue
            node.fail(at=now)
            self.engine.metrics.counter("facility.node_crashes").inc()
            owner = self._allocated.get(nid)
            if owner is not None:
                doomed.setdefault(owner, []).append(nid)
        for job_id, dead in doomed.items():
            self._on_tenant_crash(self._tenants[job_id], dead)
        if doomed:
            self._schedule()

    def _on_tenant_crash(self, tenant: _Tenant, dead_nodes: list[int]) -> None:
        rec = tenant.record
        if tenant.gone:
            return
        now = self.engine.now
        # the resident ranks die first; the coordinator aborts any protocol
        # in flight (a preemption checkpoint racing the crash resolves with
        # CheckpointAborted before we tear the tenant down)
        dead = set(dead_nodes)
        for rank, nid in enumerate(tenant.job.world.placement):
            if nid in dead:
                tenant.job.runtimes[rank].kill()
                tenant.job.coordinator.notify_rank_failure(rank)
        # losing any rank kills the whole MPI job; work since the last
        # checkpoint (or since the app went live) is gone
        baseline = tenant.live_at if tenant.live_at is not None else tenant.alloc_start
        if rec.ckpt_saved_at is not None and rec.ckpt_saved_at >= tenant.alloc_start:
            baseline = max(baseline, rec.ckpt_saved_at)
        rec.node_seconds_lost += (now - baseline) * len(tenant.nodes)
        rec.crashes += 1
        was_preempting = rec.state is JobState.PREEMPTING
        self._teardown(tenant)
        rec.state = JobState.PENDING
        rec.queued_since = now
        m = self.engine.metrics
        m.counter("facility.crash_requeues").inc()
        tr = self.engine.tracer
        if tr.enabled:
            tr.instant("facility:crash-requeue", cat=Category.FACILITY,
                       job=rec.spec.name, nodes=dead_nodes,
                       had_ckpt=rec.ckpt is not None,
                       was_preempting=was_preempting)
