"""Protocol models for the checker.

State layout (both models):

``(ranks, coord, mailboxes, outboxes)`` where

* ``ranks[i] = (pc, it, mode, owe, ex2, frozen)`` — program counter, loop
  iteration, protocol mode ('n'ormal / 'p're-ckpt / '1' replied-in-phase-1),
  deferred-reply owed, exited-phase-2 flag, frozen flag;

Mode '1' is the *revision rule* (see repro.mana.protocol): a rank whose last
reply was ``in-phase-1`` and that subsequently commits into phase 2 sends an
unsolicited revision ``('v',)``; the coordinator clears its reply slot and
waits for the deferred ``exit-phase-2``.  Without this rule the checker
finds a genuine violation: the rank's reply goes stale between the round's
completion and do-ckpt delivery.
* ``coord = (phase, replies, acks, started)`` — coordinator phase ('idle',
  'round', 'ckpt', 'done'), per-rank reply slots, freeze acks, whether the
  one modeled checkpoint has begun;
* ``mailboxes[i]`` — FIFO of control messages to rank ``i`` ('I'ntend,
  'E'xtra-iteration, 'D'o-ckpt, 'R'esume);
* ``outboxes[i]`` — at most one in-flight message to the coordinator:
  ``('s', report)`` state replies or ``('f',)`` freeze acks.

Program counters: 'C' computing, 'G' held at wrapper entry, 'P1' in the
trivial barrier, 'P2' in the real collective, 'X' finished.  The naive model
replaces the wrapper with a bare collective ('CC').
"""

from __future__ import annotations

from typing import Iterable, Hashable

from repro.modelcheck.checker import Model

READY = ("r",)
EXIT2 = ("x",)


def _rank(pc, it, mode="n", owe=0, ex2=0, frozen=0):
    return (pc, it, mode, owe, ex2, frozen)


class TwoPhaseModel(Model):
    """Algorithm 2 with the trivial-barrier commit rule, one communicator."""

    def __init__(self, n_ranks: int = 2, n_iters: int = 2) -> None:
        self.n = n_ranks
        self.k = n_iters

    # ------------------------------------------------------------ lifecycle

    def initial_states(self) -> Iterable[Hashable]:
        """The model's initial state set."""
        ranks = tuple(_rank("C", 0) for _ in range(self.n))
        coord = ("idle", (None,) * self.n, 0, 0)
        empty = ((),) * self.n
        return [(ranks, coord, empty, (None,) * self.n)]

    def is_terminal(self, state) -> bool:
        """True for states where the protocol has fully completed."""
        ranks, coord, mail, out = state
        return (
            all(r[0] == "X" for r in ranks)
            and coord[0] == "done"
            and all(not m for m in mail)
            and all(o is None for o in out)
        )

    def invariants(self):
        """Named predicates that must hold in every reachable state."""
        return {
            # Theorem 1: processing do-ckpt never finds a rank in phase 2.
            # We flag it in the transition by freezing INTO a poisoned pc.
            "no-rank-in-phase2-at-ckpt": lambda s: not any(
                r[0] == "VIOLATION" for r in s[0]
            ),
            # Algorithm 2 writes only after the GLOBAL drain: the abstract
            # write happens in the resume transition, which records the ack
            # count it fired at — a done-state with fewer than n acks would
            # mean an image was cut before every rank had frozen.
            "write-after-global-drain": lambda s: (
                s[1][0] != "done" or s[1][2] == self.n
            ),
        }

    # ---------------------------------------------------------- successors

    def successors(self, state):
        """Enabled (action, next-state) transitions from ``state``."""
        ranks, coord, mail, out = state
        n, k = self.n, self.k
        phase, replies, acks, started = coord

        def with_rank(i, newr, newmail=None, newout=None, newcoord=None):
            rs = ranks[:i] + (newr,) + ranks[i + 1:]
            return (
                rs,
                newcoord if newcoord is not None else coord,
                newmail if newmail is not None else mail,
                newout if newout is not None else out,
            )

        def entered_barrier(i, rs):
            it_i = rs[i][1]
            return all(
                r[1] > it_i or (r[1] == it_i and r[0] in ("P1", "PV", "P2"))
                for r in rs
            )

        def all_in_p2(i, rs):
            it_i = rs[i][1]
            return all(
                r[1] > it_i or (r[1] == it_i and r[0] == "P2")
                for r in rs
            )

        for i, (pc, it, mode, owe, ex2, frozen) in enumerate(ranks):
            if frozen:
                pass  # frozen ranks only react to mailbox messages (below)
            else:
                # 1. arrive at the wrapper
                if pc == "C":
                    if mode == "n":
                        yield (f"r{i}:enter-p1",
                               with_rank(i, _rank("P1", it, mode, owe, ex2)))
                    else:
                        yield (f"r{i}:held-at-entry",
                               with_rank(i, _rank("G", it, mode, owe, ex2)))
                # 2. gate release happens via 'R' processing (mode back to n)
                if pc == "G" and mode == "n":
                    yield (f"r{i}:gate-release",
                           with_rank(i, _rank("P1", it, mode, owe, ex2)))
                # 3. barrier commit (the revision rule: a rank that reported
                # in-phase-1 must revise SYNCHRONOUSLY — it parks in 'PV'
                # until the coordinator acknowledges, so no round can ever
                # complete against a stale in-phase-1 reply)
                if pc == "P1" and entered_barrier(i, ranks):
                    if mode == "1":
                        if out[i] is None:
                            nout = out[:i] + (("v",),) + out[i + 1:]
                            yield (f"r{i}:revise-park",
                                   with_rank(i, _rank("PV", it, "p", 1, ex2),
                                             newout=nout))
                    else:
                        yield (f"r{i}:commit-p2",
                               with_rank(i, _rank("P2", it, mode, owe, ex2)))
                # 4. collective exit
                if pc == "P2" and all_in_p2(i, ranks):
                    nit = it + 1
                    npc = "X" if nit == k else "C"
                    if owe:
                        if out[i] is None:
                            nout = out[:i] + (("s", EXIT2),) + out[i + 1:]
                            yield (f"r{i}:exit-p2-deferred-reply",
                                   with_rank(i, _rank(npc, nit, mode, 0, 0),
                                             newout=nout))
                    else:
                        nex2 = 1 if mode == "p" else 0
                        yield (f"r{i}:exit-p2",
                               with_rank(i, _rank(npc, nit, mode, 0, nex2)))

            # 5. process mailbox head
            if mail[i]:
                msg, rest = mail[i][0], mail[i][1:]
                nmail = mail[:i] + (rest,) + mail[i + 1:]
                if msg in ("I", "E"):
                    if pc in ("P2", "PV"):
                        yield (f"r{i}:recv-{msg}-defer",
                               with_rank(i, _rank(pc, it, "p", 1, ex2, frozen),
                                         newmail=nmail))
                    elif out[i] is None:
                        nmode = "p"
                        if ex2:
                            report, nex2 = EXIT2, 0
                        elif pc == "P1":
                            report, nex2 = ("1",), ex2
                            nmode = "1"  # remember: reply may need revising
                        else:
                            report, nex2 = READY, ex2
                        nout = out[:i] + (("s", report),) + out[i + 1:]
                        yield (f"r{i}:recv-{msg}-reply",
                               with_rank(i, _rank(pc, it, nmode, owe, nex2, frozen),
                                         newmail=nmail, newout=nout))
                elif msg == "D":
                    npc = "VIOLATION" if pc == "P2" else pc
                    if out[i] is None:
                        nout = out[:i] + (("f",),) + out[i + 1:]
                        yield (f"r{i}:recv-D-freeze",
                               with_rank(i, _rank(npc, it, mode, owe, ex2, 1),
                                         newmail=nmail, newout=nout))
                elif msg == "R":
                    yield (f"r{i}:recv-R-resume",
                           with_rank(i, _rank(pc, it, "n", owe, 0, 0),
                                     newmail=nmail))
                elif msg == "A":
                    # revision acknowledged: commit into phase 2
                    if pc != "PV":
                        raise AssertionError("A outside PV")
                    yield (f"r{i}:ack-commit-p2",
                           with_rank(i, _rank("P2", it, mode, owe, ex2, frozen),
                                     newmail=nmail))

            # 6. deliver outbox to coordinator
            if out[i] is not None:
                kind = out[i][0]
                nout = out[:i] + (None,) + out[i + 1:]
                if kind == "s" and phase == "round" and replies[i] is None:
                    nrep = replies[:i] + (out[i][1],) + replies[i + 1:]
                    yield (f"c:recv-reply-r{i}",
                           (ranks, (phase, nrep, acks, started), mail, nout))
                elif kind == "v" and phase == "round":
                    # revision: clear the stale reply slot and acknowledge
                    nrep = replies[:i] + (None,) + replies[i + 1:]
                    nmail2 = mail[:i] + (mail[i] + ("A",),) + mail[i + 1:]
                    yield (f"c:recv-revise-r{i}",
                           (ranks, (phase, nrep, acks, started), nmail2, nout))
                elif kind == "f" and phase == "ckpt":
                    yield (f"c:recv-ack-r{i}",
                           (ranks, (phase, replies, acks + 1, started), mail, nout))

        # 7. coordinator starts the (single) checkpoint
        if phase == "idle" and not started:
            nmail = tuple(m + ("I",) for m in mail)
            yield ("c:intend", (ranks, ("round", (None,) * n, 0, 1), nmail, out))

        # 8. round complete
        if phase == "round" and all(r is not None for r in replies):
            if self._needs_extra(replies):
                nmail = tuple(m + ("E",) for m in mail)
                yield ("c:extra-iteration",
                       (ranks, ("round", (None,) * n, 0, 1), nmail, out))
            else:
                nmail = tuple(m + ("D",) for m in mail)
                yield ("c:do-ckpt",
                       (ranks, ("ckpt", (None,) * n, 0, 1), nmail, out))

        # 9. all frozen: write happens here (abstracted), then resume —
        # the done-state keeps the ack count so "write-after-global-drain"
        # is checkable as a state predicate.
        if phase == "ckpt" and acks == n:
            nmail = tuple(m + ("R",) for m in mail)
            yield ("c:resume", (ranks, ("done", replies, acks, 1), nmail, out))

    def _needs_extra(self, replies) -> bool:
        # Algorithm 2 line 7, plus the fully-entered-barrier clause
        # (Challenge I): if every member reports in-phase-1, the barrier is
        # complete (or completing) and revisions may still be in flight —
        # do-ckpt now could land inside phase 2, so iterate instead.
        if any(r == EXIT2 for r in replies):
            return True
        return all(r == ("1",) for r in replies)


class NaiveModel(TwoPhaseModel):
    """The strawman: no trivial barrier, no intent rounds — the coordinator
    sends do-ckpt directly.  The checker finds the phase-2 violation."""

    def successors(self, state):
        """Enabled (action, next-state) transitions from ``state``."""
        ranks, coord, mail, out = state
        n, k = self.n, self.k
        phase, replies, acks, started = coord

        def with_rank(i, newr, newmail=None, newout=None):
            rs = ranks[:i] + (newr,) + ranks[i + 1:]
            return (
                rs, coord,
                newmail if newmail is not None else mail,
                newout if newout is not None else out,
            )

        def all_entered(i, rs):
            it_i = rs[i][1]
            return all(
                r[1] > it_i or (r[1] == it_i and r[0] == "CC")
                for r in rs
            )

        for i, (pc, it, mode, owe, ex2, frozen) in enumerate(ranks):
            if not frozen:
                if pc == "C":
                    yield (f"r{i}:enter-coll",
                           with_rank(i, _rank("CC", it)))
                if pc == "CC" and all_entered(i, ranks):
                    nit = it + 1
                    npc = "X" if nit == k else "C"
                    yield (f"r{i}:exit-coll", with_rank(i, _rank(npc, nit)))
            if mail[i]:
                msg, rest = mail[i][0], mail[i][1:]
                nmail = mail[:i] + (rest,) + mail[i + 1:]
                if msg == "D" and out[i] is None:
                    npc = "VIOLATION" if pc == "CC" else pc
                    nout = out[:i] + (("f",),) + out[i + 1:]
                    yield (f"r{i}:recv-D-freeze",
                           with_rank(i, _rank(npc, it, mode, owe, ex2, 1),
                                     newmail=nmail, newout=nout))
                elif msg == "R":
                    yield (f"r{i}:recv-R-resume",
                           with_rank(i, _rank(pc, it, "n", owe, 0, 0),
                                     newmail=nmail))
            if out[i] is not None and out[i][0] == "f" and phase == "ckpt":
                nout = out[:i] + (None,) + out[i + 1:]
                yield (f"c:recv-ack-r{i}",
                       (ranks, (phase, replies, acks + 1, started), mail, nout))

        if phase == "idle" and not started:
            nmail = tuple(m + ("D",) for m in mail)
            yield ("c:do-ckpt", (ranks, ("ckpt", replies, 0, 1), nmail, out))
        if phase == "ckpt" and acks == n:
            nmail = tuple(m + ("R",) for m in mail)
            yield ("c:resume", (ranks, ("done", replies, acks, 1), nmail, out))


class TopoSortModel(Model):
    """The topological-sort protocol (v2) on a ring + collective scenario.

    The model is the 3-rank shape the differential harness stresses: every
    rank sends one p2p message to its ring successor — the sends form the
    dependency **cycle** that forces the bounded-local-drain fallback — and
    then enters one two-phase collective.  The coordinator runs protocol
    v2 (see :class:`repro.mana.protocol_engine.TopoSortProtocol`): a single
    ``topo-intent`` round, per-communicator laggard classification, and a
    per-rank drain → write with **no global barrier between them** — a rank
    is written the moment its own expected receives have landed, which is
    exactly the "write-after-local-drain" invariant this model checks.

    State: ``(ranks, net, coord, mailboxes, outboxes)`` where

    * ``ranks[i] = (pc, mode, owe, frozen, drained, written)`` — program
      counter ('C' computing, 'S' sent, 'G' held at entry, 'P1' trivial
      barrier, 'PV' revision parked, 'P2' real collective, 'X' done, or a
      ``V:``-prefixed poison), protocol mode ('n'/'p'/'1' as in
      :class:`TwoPhaseModel`), deferred-reply owed, frozen (gates compute
      and send only — wrapper transitions keep running, matching the real
      runtime where ``driver.quiesce()`` stops the app but not the
      collective state machine), drained, written;
    * ``net[i]`` — status of rank ``i``'s one message to ``(i+1) % n``:
      'u'nsent, in-'f'light, 'd'elivered;
    * ``coord = (phase, slots, started)`` — phase 'idle' / 'collect' /
      'drain' / 'done'; ``slots[i]`` is None before rank ``i``'s
      ``topo-state`` reply, then its class ('r'/'p1'/'p2'/'x2'), then its
      pipeline status ('L' laggard awaiting exit, 'D' drain sent,
      'DR' drained + write sent, 'W' written);
    * mailboxes carry 'T'(opo-intent), 'A'(revise-ack), 'D'(rain),
      'W'(rite), 'R'(esume); outboxes carry ``('s', class)`` state
      replies, ``('v',)`` revisions, ``('x',)`` deferred exits,
      ``('dr',)`` drained, ``('w',)`` write-done.
    """

    def __init__(self, n_ranks: int = 3, n_iters: int = 1) -> None:
        self.n = n_ranks
        # the scenario has one collective; n_iters kept for CLI symmetry
        self.k = n_iters

    # ------------------------------------------------------------ lifecycle

    def initial_states(self):
        """The model's initial state set."""
        ranks = tuple(("C", "n", 0, 0, 0, 0) for _ in range(self.n))
        coord = ("idle", (None,) * self.n, 0)
        empty = ((),) * self.n
        return [(ranks, ("u",) * self.n, coord, empty, (None,) * self.n)]

    def is_terminal(self, state) -> bool:
        """True for states where the protocol has fully completed."""
        ranks, net, coord, mail, out = state
        return (
            all(r[0] == "X" for r in ranks)
            and coord[0] == "done"
            and all(m == () for m in mail)
            and all(o is None for o in out)
            and all(s != "f" for s in net)
        )

    def invariants(self):
        """Named predicates that must hold in every reachable state."""
        return {
            # a rank is written only after ITS drain completed (the v2
            # property — there is no global drain barrier to hide behind)
            "write-after-local-drain": lambda s: not any(
                r[0] == "V:write-before-drain" for r in s[0]
            ),
            # never cut an image of a rank inside the real collective
            "no-write-in-phase-2": lambda s: not any(
                r[0] == "V:write-in-p2" for r in s[0]
            ),
            # a rank the classification settled never revises afterwards
            # (the engine raises on this; here it must be unreachable)
            "no-settled-revision": lambda s: not any(
                r[0] == "V:settled-revised" for r in s[0]
            ),
        }

    # ---------------------------------------------------------- successors

    def successors(self, state):
        """Enabled (action, next-state) transitions from ``state``."""
        ranks, net, coord, mail, out = state
        n = self.n
        phase, slots, started = coord

        def mk(rs=None, nt=None, co=None, ml=None, ot=None):
            return (
                rs if rs is not None else ranks,
                nt if nt is not None else net,
                co if co is not None else coord,
                ml if ml is not None else mail,
                ot if ot is not None else out,
            )

        def with_rank(i, newr, **kw):
            return mk(rs=ranks[:i] + (newr,) + ranks[i + 1:], **kw)

        def entered(rs):
            return all(r[0] in ("P1", "PV", "P2", "X") for r in rs)

        def all_p2(rs):
            return all(r[0] in ("P2", "X") for r in rs)

        def push(box, i, msg):
            return box[:i] + (box[i] + (msg,),) + box[i + 1:]

        def setout(i, msg):
            return out[:i] + (msg,) + out[i + 1:]

        def setslot(i, v):
            ns = slots[:i] + (v,) + slots[i + 1:]
            return (phase, ns, started)

        for i, (pc, mode, owe, frozen, drained, written) in enumerate(ranks):
            # ---- app transitions (frozen gates compute/send, not wrapper)
            if pc == "C" and not frozen and net[i] == "u":
                yield (f"r{i}:send",
                       with_rank(i, ("S", mode, owe, 0, drained, written),
                                 nt=net[:i] + ("f",) + net[i + 1:]))
            if pc == "S" and not frozen:
                npc = "P1" if mode == "n" else "G"
                yield (f"r{i}:enter" if npc == "P1" else f"r{i}:held",
                       with_rank(i, (npc, mode, owe, 0, drained, written)))
            if pc == "G" and mode == "n" and not frozen:
                yield (f"r{i}:gate-release",
                       with_rank(i, ("P1", mode, owe, 0, drained, written)))
            # barrier commit: a rank whose reply said in-phase-1 revises
            # synchronously and parks until the ack (as in TwoPhaseModel)
            if pc == "P1" and entered(ranks):
                if mode == "1":
                    if out[i] is None:
                        yield (f"r{i}:revise-park",
                               with_rank(i, ("PV", "p", 1, frozen, drained,
                                             written),
                                         ot=setout(i, ("v",))))
                else:
                    yield (f"r{i}:commit-p2",
                           with_rank(i, ("P2", mode, owe, frozen, drained,
                                         written)))
            # collective exit; under a pending checkpoint the rank parks
            # frozen and sends its deferred exit reply
            if pc == "P2" and all_p2(ranks):
                if mode == "n":
                    yield (f"r{i}:exit",
                           with_rank(i, ("X", mode, 0, frozen, drained,
                                         written)))
                elif owe and out[i] is None:
                    yield (f"r{i}:exit-deferred-reply",
                           with_rank(i, ("X", mode, 0, 1, drained, written),
                                     ot=setout(i, ("x",))))
                elif not owe:
                    yield (f"r{i}:exit-parked",
                           with_rank(i, ("X", mode, 0, 1, drained, written)))

            # ---- network delivery (always enabled: draining receives)
            if net[i] == "f":
                yield (f"net:deliver-{i}",
                       mk(nt=net[:i] + ("d",) + net[i + 1:]))

            # ---- mailbox processing
            if mail[i]:
                msg, rest = mail[i][0], mail[i][1:]
                nmail = mail[:i] + (rest,) + mail[i + 1:]
                if msg == "T" and out[i] is None:
                    if pc in ("P2", "PV"):
                        cls, nmode, nowe, nfro = "p2", "p", 1, frozen
                    elif pc == "P1":
                        cls, nmode, nowe, nfro = "p1", "1", owe, 1
                    else:
                        cls, nmode, nowe, nfro = "r", "p", owe, 1
                    yield (f"r{i}:recv-T",
                           with_rank(i, (pc, nmode, nowe, nfro, drained,
                                         written),
                                     ml=nmail, ot=setout(i, ("s", cls))))
                elif msg == "A":
                    if pc == "PV":
                        yield (f"r{i}:ack-commit-p2",
                               with_rank(i, ("P2", mode, owe, frozen, drained,
                                             written), ml=nmail))
                elif msg == "D":
                    # local drain: complete once the one message destined
                    # to this rank is no longer in flight
                    if net[(i - 1) % n] != "f":
                        if out[i] is None:
                            yield (f"r{i}:drained",
                                   with_rank(i, (pc, mode, owe, frozen, 1,
                                                 written),
                                             ml=nmail, ot=setout(i, ("dr",))))
                elif msg == "W":
                    if out[i] is None:
                        if pc == "P2":
                            npc = "V:write-in-p2"
                        elif not drained:
                            npc = "V:write-before-drain"
                        else:
                            npc = pc
                        yield (f"r{i}:write",
                               with_rank(i, (npc, mode, owe, frozen, drained,
                                             1),
                                         ml=nmail, ot=setout(i, ("w",))))
                elif msg == "R":
                    yield (f"r{i}:resume",
                           with_rank(i, (pc, "n", owe, 0, drained, written),
                                     ml=nmail))

            # ---- outbox delivery to the coordinator
            if out[i] is not None:
                kind = out[i][0]
                nout = setout(i, None)
                if kind == "s" and phase == "collect" and slots[i] is None:
                    nco = setslot(i, out[i][1])
                    yield (f"c:recv-state-r{i}", mk(co=nco, ot=nout))
                elif kind == "v":
                    # revision: pre-classification it upgrades the reply;
                    # during drain it is legal only from a laggard; after
                    # the checkpoint is done it is a benign post-resume
                    # straggler (the rank committed before processing its
                    # own RESUME) — ack and ignore
                    if phase == "collect":
                        nco = setslot(i, "p2")
                        yield (f"c:recv-revise-r{i}",
                               mk(co=nco, ml=push(mail, i, "A"), ot=nout))
                    elif slots[i] == "L" or phase == "done":
                        yield (f"c:recv-revise-r{i}",
                               mk(ml=push(mail, i, "A"), ot=nout))
                    else:
                        yield (f"c:recv-revise-r{i}",
                               with_rank(i, ("V:settled-revised",) + ranks[i][1:],
                                         ot=nout))
                elif kind == "x":
                    if phase == "collect":
                        # exited before classification: remember it so the
                        # classifier drains it immediately
                        nco = setslot(i, "x2")
                        yield (f"c:recv-exit-r{i}", mk(co=nco, ot=nout))
                    elif slots[i] == "L":
                        nco = setslot(i, "D")
                        yield (f"c:recv-exit-r{i}",
                               mk(co=nco, ml=push(mail, i, "D"), ot=nout))
                elif kind == "dr" and slots[i] == "D":
                    # the v2 step: write THIS rank now — no global barrier
                    nco = setslot(i, "DR")
                    yield (f"c:recv-drained-r{i}",
                           mk(co=nco, ml=push(mail, i, "W"), ot=nout))
                elif kind == "w" and slots[i] == "DR":
                    ns = slots[:i] + ("W",) + slots[i + 1:]
                    if all(v == "W" for v in ns):
                        nmail2 = mail
                        for j in range(n):
                            nmail2 = push(nmail2, j, "R")
                        yield (f"c:recv-write-done-r{i}",
                               mk(co=("done", ns, started), ml=nmail2,
                                  ot=nout))
                    else:
                        yield (f"c:recv-write-done-r{i}",
                               mk(co=(phase, ns, started), ot=nout))

        # ---- coordinator: the single topo-intent round
        if phase == "idle" and not started:
            nmail = mail
            for j in range(n):
                nmail = push(nmail, j, "T")
            yield ("c:topo-intent",
                   mk(co=("collect", (None,) * n, 1), ml=nmail))

        # ---- classification: one round collected; partition and drain
        if phase == "collect" and all(v is not None for v in slots):
            reporting = set(slots) <= {"p1", "p2", "x2"}
            lag = {
                i for i, v in enumerate(slots)
                if v in ("p2", "x2") or (v == "p1" and reporting)
            }
            nslots = []
            nmail = mail
            for j, v in enumerate(slots):
                if j in lag:
                    if v == "x2":
                        nslots.append("D")
                        nmail = push(nmail, j, "D")
                    else:
                        nslots.append("L")
                else:
                    nslots.append("D")
                    nmail = push(nmail, j, "D")
            yield ("c:classify",
                   mk(co=("drain", tuple(nslots), 1), ml=nmail))
