"""A small TLC-style breadth-first explicit-state model checker.

Models expose initial states, a successor relation, a named-invariant map,
and a terminal predicate.  The checker explores the full reachable state
space and reports:

* **invariant violations**, with a shortest counterexample trace;
* **deadlocks** (non-terminal states with no successors), with a trace;
* **liveness**: whether every reachable state can still reach a terminal
  state (checked by reverse reachability over the explored graph — a
  finite-graph stand-in for "eventually completes" under fairness).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Optional


class Model:
    """Interface a protocol model implements."""

    def initial_states(self) -> Iterable[Hashable]:
        """The model's initial state set."""
        raise NotImplementedError

    def successors(self, state: Hashable) -> Iterable[tuple[str, Hashable]]:
        """(action label, next state) pairs."""
        raise NotImplementedError

    def invariants(self) -> dict[str, Callable[[Hashable], bool]]:
        """Named predicates that must hold in every reachable state."""
        return {}

    def is_terminal(self, state: Hashable) -> bool:
        """True for states where the protocol has fully completed."""
        raise NotImplementedError


@dataclass
class CheckResult:
    """Outcome of one exhaustive exploration."""

    states_explored: int
    transitions: int
    diameter: int
    ok: bool
    #: name of the violated invariant (or "deadlock"/"liveness"), if any
    failure: Optional[str] = None
    #: shortest action trace to the failing state
    trace: list[str] = field(default_factory=list)
    #: the failing state itself (for debugging)
    failing_state: Any = None

    def __str__(self) -> str:
        status = "OK" if self.ok else f"FAILED ({self.failure})"
        return (
            f"{status}: {self.states_explored} states, "
            f"{self.transitions} transitions, diameter {self.diameter}"
        )


class ModelChecker:
    """Exhaustive BFS over a model's state space."""

    def __init__(self, model: Model, max_states: int = 2_000_000) -> None:
        self.model = model
        self.max_states = max_states

    def run(self, check_liveness: bool = True) -> CheckResult:
        """Exhaustive BFS over the reachable state space; see CheckResult."""
        invariants = self.model.invariants()
        parents: dict[Hashable, Optional[tuple[Hashable, str]]] = {}
        frontier: deque[tuple[Hashable, int]] = deque()
        successors_of: dict[Hashable, list[Hashable]] = {}
        transitions = 0
        diameter = 0

        for s0 in self.model.initial_states():
            parents[s0] = None
            frontier.append((s0, 0))

        for state in list(parents):
            for name, pred in invariants.items():
                if not pred(state):
                    return self._fail(parents, state, name, 0, 0, 0)

        while frontier:
            state, depth = frontier.popleft()
            diameter = max(diameter, depth)
            succ: list[Hashable] = []
            for action, nxt in self.model.successors(state):
                transitions += 1
                succ.append(nxt)
                if nxt not in parents:
                    parents[nxt] = (state, action)
                    if len(parents) > self.max_states:
                        raise RuntimeError(
                            f"state space exceeds {self.max_states} states"
                        )
                    for name, pred in invariants.items():
                        if not pred(nxt):
                            return self._fail(
                                parents, nxt, name, len(parents),
                                transitions, depth + 1,
                            )
                    frontier.append((nxt, depth + 1))
            successors_of[state] = succ
            if not succ and not self.model.is_terminal(state):
                return self._fail(
                    parents, state, "deadlock", len(parents), transitions, depth
                )

        if check_liveness:
            alive = self._reverse_reachable(successors_of)
            for state in parents:
                if state not in alive:
                    return self._fail(
                        parents, state, "liveness", len(parents), transitions,
                        diameter,
                    )

        return CheckResult(
            states_explored=len(parents), transitions=transitions,
            diameter=diameter, ok=True,
        )

    def simulate(self, n_walks: int = 200, max_depth: int = 10_000,
                 seed: int = 0) -> CheckResult:
        """TLC's *simulation mode*: random walks through the state space.

        For rank counts beyond exhaustive reach, checks the invariants and
        deadlock-freedom along ``n_walks`` random executions.  Weaker than
        :meth:`run` (no liveness, no exhaustiveness) but scales to models
        whose full graphs do not fit in memory.
        """
        import random

        rng = random.Random(seed)
        invariants = self.model.invariants()
        states_seen = 0
        transitions = 0
        deepest = 0
        for walk in range(n_walks):
            state = rng.choice(list(self.model.initial_states()))
            trace: list[str] = []
            for _depth in range(max_depth):
                for name, pred in invariants.items():
                    if not pred(state):
                        return CheckResult(
                            states_explored=states_seen + 1,
                            transitions=transitions, diameter=len(trace),
                            ok=False, failure=name, trace=trace,
                            failing_state=state,
                        )
                options = list(self.model.successors(state))
                transitions += len(options)
                states_seen += 1
                if not options:
                    if self.model.is_terminal(state):
                        break
                    return CheckResult(
                        states_explored=states_seen, transitions=transitions,
                        diameter=len(trace), ok=False, failure="deadlock",
                        trace=trace, failing_state=state,
                    )
                action, state = rng.choice(options)
                trace.append(action)
            deepest = max(deepest, len(trace))
        return CheckResult(states_explored=states_seen,
                           transitions=transitions, diameter=deepest, ok=True)

    # ------------------------------------------------------------ internals

    def _reverse_reachable(self, successors_of: dict) -> set:
        """States from which some terminal state is reachable."""
        reverse: dict[Hashable, list[Hashable]] = {}
        terminals = []
        for state, succ in successors_of.items():
            if self.model.is_terminal(state):
                terminals.append(state)
            for nxt in succ:
                reverse.setdefault(nxt, []).append(state)
        alive = set(terminals)
        queue = deque(terminals)
        while queue:
            state = queue.popleft()
            for prev in reverse.get(state, ()):
                if prev not in alive:
                    alive.add(prev)
                    queue.append(prev)
        return alive

    def _fail(self, parents, state, name, n_states, transitions, depth) -> CheckResult:
        trace: list[str] = []
        cursor = state
        while parents.get(cursor) is not None:
            cursor, action = parents[cursor]
            trace.append(action)
        trace.reverse()
        return CheckResult(
            states_explored=max(n_states, 1), transitions=transitions,
            diameter=depth, ok=False, failure=name, trace=trace,
            failing_state=state,
        )
