"""Explicit-state model checking of the two-phase protocol (§2.6).

The paper validated Algorithm 2 with a TLA+/PlusCal model run through TLC.
This package is the equivalent apparatus: a small breadth-first
explicit-state checker (:mod:`checker`) and two protocol models
(:mod:`models`):

* :class:`TwoPhaseModel` — Algorithm 2 with the trivial-barrier commit rule
  (see :mod:`repro.mana.protocol`); the checker verifies, exhaustively for
  small rank counts, that (a) no rank ever processes ``do-ckpt`` inside the
  real collective, (b) the protocol never deadlocks, and (c) from every
  reachable state the system can reach completion;
* :class:`NaiveModel` — the strawman without the two-phase wrapper, for
  which the checker *finds* the invariant violation (why MANA needs
  Algorithm 2 at all);
* :class:`TopoSortModel` — the topological-sort protocol v2 (single intent
  round, laggard classification, per-rank drain → write with no global
  barrier) on a ring-with-collective scenario whose p2p sends form a
  dependency cycle; the checker verifies write-after-local-drain,
  no-write-in-phase-2, and deadlock-freedom of the cycle fallback.
"""

from repro.modelcheck.checker import CheckResult, ModelChecker
from repro.modelcheck.models import NaiveModel, TopoSortModel, TwoPhaseModel

__all__ = [
    "CheckResult",
    "ModelChecker",
    "NaiveModel",
    "TopoSortModel",
    "TwoPhaseModel",
]
