#!/usr/bin/env python
"""§2.6 reproduced: model-check the two-phase checkpoint protocol.

The paper used TLA+/PlusCal with the TLC model checker; this repository
ships its own explicit-state checker.  The script verifies Algorithm 2
(safety, deadlock freedom, liveness) exhaustively for small rank counts,
then shows the counterexample the checker finds for the *naive* protocol
without the two-phase wrapper — the reason the algorithm exists.

Run:  python examples/verify_protocol.py
"""

from repro.modelcheck import ModelChecker, NaiveModel, TwoPhaseModel


def main() -> None:
    print("Verifying the two-phase protocol (Algorithm 2)...")
    for n_ranks, n_iters in [(2, 1), (2, 2), (3, 1), (3, 2), (4, 1)]:
        result = ModelChecker(TwoPhaseModel(n_ranks, n_iters)).run()
        print(f"  N={n_ranks} ranks, {n_iters} collectives each: {result}")
        assert result.ok

    print()
    print("Checked invariants:")
    print("  * safety:   no rank is inside the real collective (phase 2)")
    print("              when do-ckpt is processed  [Theorem 1]")
    print("  * progress: no deadlock; checkpoint + run always completable")
    print("              [Theorem 2]")

    print()
    print("Now the naive protocol (no trivial barrier, no intent rounds):")
    naive = ModelChecker(NaiveModel(2, 1)).run(check_liveness=False)
    print(f"  {naive}")
    assert not naive.ok
    print("  counterexample trace (shortest):")
    for step in naive.trace:
        print(f"    {step}")
    print("  -> the checkpoint lands while rank 0 is inside a collective;")
    print("     restarting such an image deadlocks or corrupts the job.")


if __name__ == "__main__":
    main()
