#!/usr/bin/env python
"""§4.2's load-balancing scenario: use checkpoint-restart to *re-bind ranks
to hosts* in the middle of a run.

A CLAMR-like AMR job develops load imbalance; we checkpoint it and restart
with a different ranks-per-node mapping (consolidating onto fewer, or
spreading over more, nodes).  A fresh MPI_Init in the new lower half
discovers the new topology for free — no application logic involved.

Run:  python examples/load_balancing.py
"""

from repro.apps import get_app
from repro.harness.experiments import _launch_mana_app
from repro.hardware.cluster import cori, make_cluster
from repro.mana import restart


def main() -> None:
    spec = get_app("clamr")
    cfg = spec.default_config.scaled(n_steps=12)

    src = cori(2)
    job = _launch_mana_app(src, spec, cfg, 16, 8)
    print(f"CLAMR: 16 ranks as 2 nodes x 8 on {src.name}")
    job.run_until(0.01)
    ckpt, _ = job.checkpoint()
    print(f"checkpointed ({ckpt.total_bytes / (1 << 30):.2f} GB)")

    # Burst out: spread the same 16 ranks across 8 nodes (2 per node) on a
    # bigger partition — more memory bandwidth per rank.
    wide = cori(8)
    job_wide = restart(ckpt, wide, spec.build(cfg), ranks_per_node=2)
    job_wide.run_to_completion()
    print(f"restarted wide: 8 nodes x 2 ranks — "
          f"placement {job_wide.world.placement}")

    # Or consolidate onto one fat node (e.g. to vacate the cluster).
    fat = make_cluster("fatnode", 1, cores_per_node=32, interconnect="tcp")
    job_fat = restart(ckpt, fat, spec.build(cfg), ranks_per_node=16)
    job_fat.run_to_completion()
    print(f"restarted consolidated: 1 node x 16 ranks — "
          f"placement {job_fat.world.placement}")

    assert [s["checksum"] for s in job_wide.states] == \
        [s["checksum"] for s in job_fat.states]
    print("both layouts produced identical results; only the topology "
          "(and therefore performance) differs:")
    print(f"  wide:         {job_wide.engine.now - job_wide.restart_report.total_time:.4f} s of post-restart compute")
    print(f"  consolidated: {job_fat.engine.now - job_fat.restart_report.total_time:.4f} s of post-restart compute")


if __name__ == "__main__":
    main()
