#!/usr/bin/env python
"""The production loop MANA exists for: periodic checkpoints to stable
storage, a node failure, recovery on replacement hardware — with the
application also writing results to a shared parallel filesystem through
MPI-IO (open files restored across the restart).

Run:  python examples/fault_tolerance.py
"""

import tempfile

import numpy as np

from repro.hardware.cluster import make_cluster
from repro.hardware.filesystem import SimFilesystem
from repro.mana import launch_mana, load_checkpoint, restart
from repro.mana.autockpt import run_with_periodic_checkpoints, young_daly_interval
from repro.mpilib import SUM
from repro.mprog import Call, Compute, Loop, Program, Seq
from repro.simtime import Completion


def make_program(rank, size):
    """Iterative solver that appends a result row to /results.dat per step."""

    def init(s):
        s["x"] = np.array([float(s["rank"] + 1)])

    def open_results(s, api):
        return api.file_open("/results.dat", "rw")

    def solve(s, api):
        return api.allreduce(s["x"], SUM)

    def update(s):
        s["x"] = s["x"] * 0.95 + 0.5

    def write_row(s, api):
        offset = (s["step"] * s["size"] + s["rank"]) * 8
        return api.file_write_at_all(s["fh"], offset,
                                     np.array([float(s["sum"][0])]).tobytes())

    def close_results(s, api):
        api.file_close(s["fh"])
        done = Completion(api.rt.engine)
        done.resolve(None)
        return done

    return Program(Seq(
        Compute(init),
        Call(open_results, store="fh"),
        Loop(16, Seq(
            Call(solve, store="sum"),
            Compute(update, cost=0.8),
            Call(write_row, store="_w"),
        ), var="step"),
        Call(close_results),
    ), name="solver")


def main() -> None:
    shared_fs = SimFilesystem("site-lustre")
    prod = make_cluster("prod", 4, interconnect="aries", fs=shared_fs,
                        default_mpi="craympich")

    # Pick the checkpoint period from the Young/Daly formula.
    interval = young_daly_interval(mtbf_seconds=40.0, ckpt_cost_seconds=0.5)
    print(f"Young/Daly period for MTBF=40s, C=0.5s: {interval:.1f} s")

    with tempfile.TemporaryDirectory() as stable_storage:
        job = launch_mana(prod, make_program, n_ranks=8, ranks_per_node=2).start()
        # Drive with periodic checkpoints until a node fails at t=10.5 s.
        run = run_with_periodic_checkpoints(job, interval=interval,
                                            out_dir=stable_storage, keep=2,
                                            until=10.5)
        assert not run.completed, "the failure should interrupt the run"
        print(f"node failure at t=10.5 s! job lost mid-run "
              f"(~step {job.states[0].get('step', '?')} of 16); "
              f"last checkpoint: {run.latest_dir.name}, "
              f"{len(run.reports)} checkpoints taken "
              f"({run.checkpoint_overhead:.2f} s total overhead)")
        ckpt = load_checkpoint(run.latest_dir)
        del job  # the crashed world

        # Recover on the spare partition: different MPI, different fabric.
        spare = make_cluster("spare", 8, interconnect="infiniband",
                             fs=shared_fs, default_mpi="openmpi")
        recovered = restart(ckpt, spare, make_program, ranks_per_node=1)
        recovered.run_to_completion()
        print(f"recovered on {spare.name} "
              f"({recovered.world.impl.name}/{recovered.world.fabric.name}); "
              f"run completed at t={recovered.engine.now:.2f} s")

    # Verify the output file against an uninterrupted reference run.
    ref_fs = SimFilesystem()
    ref = make_cluster("ref", 4, interconnect="aries", fs=ref_fs,
                       default_mpi="craympich")
    ref_job = launch_mana(ref, make_program, n_ranks=8, ranks_per_node=2).start()
    ref_job.run_to_completion()
    got = shared_fs.open("/results.dat", create=False)
    want = ref_fs.open("/results.dat", create=False)
    assert got.read(0, want.size) == want.read(0, want.size)
    print(f"verified: /results.dat ({want.size} bytes) identical to an "
          f"uninterrupted run — no lost or duplicated output rows")


if __name__ == "__main__":
    main()
