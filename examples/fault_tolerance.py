#!/usr/bin/env python
"""The production loop MANA exists for — now fully automated by
``repro.faults``: periodic checkpoints to stable storage, node failures
injected mid-compute *and* mid-checkpoint-protocol, heartbeat detection,
re-planning onto a spare cluster (different MPI, different fabric), and
restart from the newest checkpoint — while the application writes results
to a shared parallel filesystem through MPI-IO.  The final output file is
verified byte-for-byte against an uninterrupted reference run.

Run:  python examples/fault_tolerance.py
"""

import tempfile

import numpy as np

from repro.faults import NodeCrashAt, run_resilient
from repro.hardware.cluster import make_cluster
from repro.hardware.filesystem import SimFilesystem
from repro.mana import launch_mana
from repro.mana.autockpt import young_daly_interval
from repro.mpilib import SUM
from repro.mprog import Call, Compute, Loop, Program, Seq
from repro.simtime import Completion


def make_program(rank, size):
    """Iterative solver that appends a result row to /results.dat per step."""

    def init(s):
        s["x"] = np.array([float(s["rank"] + 1)])

    def open_results(s, api):
        return api.file_open("/results.dat", "rw")

    def solve(s, api):
        return api.allreduce(s["x"], SUM)

    def update(s):
        s["x"] = s["x"] * 0.95 + 0.5

    def write_row(s, api):
        offset = (s["step"] * s["size"] + s["rank"]) * 8
        return api.file_write_at_all(s["fh"], offset,
                                     np.array([float(s["sum"][0])]).tobytes())

    def close_results(s, api):
        api.file_close(s["fh"])
        done = Completion(api.rt.engine)
        done.resolve(None)
        return done

    return Program(Seq(
        Compute(init),
        Call(open_results, store="fh"),
        Loop(16, Seq(
            Call(solve, store="sum"),
            Compute(update, cost=0.8),
            Call(write_row, store="_w"),
        ), var="step"),
        Call(close_results),
    ), name="solver")


def make_site(tag):
    """A production cluster + spare partition mounting one shared Lustre."""
    fs = SimFilesystem(f"site-lustre-{tag}")
    prod = make_cluster(f"prod-{tag}", 4, interconnect="aries", fs=fs,
                        default_mpi="craympich")
    spare = make_cluster(f"spare-{tag}", 8, interconnect="infiniband", fs=fs,
                         default_mpi="openmpi")
    return fs, prod, spare


def main() -> None:
    # Uninterrupted reference: gives both the expected output file and the
    # useful-work baseline for the efficiency figure.
    ref_fs = SimFilesystem("ref-lustre")
    ref = make_cluster("ref", 4, interconnect="aries", fs=ref_fs,
                       default_mpi="craympich")
    ref_job = launch_mana(ref, make_program, n_ranks=8, ranks_per_node=2).start()
    reference_time = ref_job.run_to_completion()

    interval = young_daly_interval(mtbf_seconds=40.0, ckpt_cost_seconds=0.5)
    print(f"Young/Daly period for MTBF=40s, C=0.5s: {interval:.1f} s")
    crash1 = NodeCrashAt(1.5 * interval, node=2)  # mid-compute, after ckpt 1

    # Rehearsal pass: run the single-crash scenario once to learn exactly
    # when the post-recovery attempt cuts its first checkpoint, so we can
    # script a second crash right in the middle of that Algorithm-2 round.
    # (The simulation is deterministic, so the timing transfers verbatim.)
    _fs1, prod1, spare1 = make_site("rehearsal")
    with tempfile.TemporaryDirectory() as stable:
        rehearsal = run_resilient(
            prod1, make_program, n_ranks=8, ranks_per_node=2,
            interval=interval, faults=[crash1], spare_cluster=spare1,
            out_dir=stable, reference_time=reference_time,
        )
    assert rehearsal.completed and len(rehearsal.failures) == 1
    detect1 = rehearsal.failures[0].detected_at
    idx = next(i for i, t in enumerate(rehearsal.checkpoint_times)
               if t > detect1)
    t_end = rehearsal.checkpoint_times[idx]
    d = rehearsal.reports[idx].total_time
    crash2 = NodeCrashAt(t_end - d / 2, node=1)  # mid-checkpoint-protocol
    print(f"rehearsal: crash at t={crash1.time:.1f}s detected "
          f"{detect1 - crash1.time:.2f}s later; recovery checkpoints at "
          f"t={t_end - d:.2f}s, so a second crash at t={crash2.time:.2f}s "
          f"lands mid-protocol")

    # The real run: two node failures, one mid-compute and one in the middle
    # of a coordinated checkpoint.  The aborted round must not hang or
    # corrupt anything; recovery falls back to the last *completed* set.
    shared_fs, prod, spare = make_site("prod")
    with tempfile.TemporaryDirectory() as stable:
        run = run_resilient(
            prod, make_program, n_ranks=8, ranks_per_node=2,
            interval=interval, faults=[crash1, crash2], spare_cluster=spare,
            out_dir=stable, reference_time=reference_time,
        )
    assert run.completed, run.stop_reason
    assert [f.during for f in run.failures] == ["compute", "checkpoint"]
    for f in run.failures:
        print(f"failure #{f.attempt}: nodes {f.nodes} at t={f.global_time:.2f}s "
              f"during {f.during}, {f.lost_work:.2f}s of work lost")
    final = run.final_job
    print(f"survived {len(run.failures)} failures with {run.recoveries} "
          f"recoveries; finished on {final.cluster.name} "
          f"({final.world.impl.name}/{final.world.fabric.name}) at "
          f"t={run.wallclock:.2f}s — efficiency {run.efficiency:.1%} "
          f"(uninterrupted: {reference_time:.2f}s)")

    # Verify the output file against the uninterrupted reference run.
    got = shared_fs.open("/results.dat", create=False)
    want = ref_fs.open("/results.dat", create=False)
    assert got.read(0, want.size) == want.read(0, want.size)
    print(f"verified: /results.dat ({want.size} bytes) identical to an "
          f"uninterrupted run — no lost or duplicated output rows")


if __name__ == "__main__":
    main()
