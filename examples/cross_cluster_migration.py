#!/usr/bin/env python
"""§3.6 reproduced as a script: migrate a GROMACS job from "Cori" to a
local cluster mid-run, across MPI implementations, networks, and rank
layouts — then compare against native runs on the target.

Run:  python examples/cross_cluster_migration.py
"""

from repro.apps import get_app
from repro.harness import fig9_cross_cluster_migration, render_table
from repro.harness.experiments import _launch_mana_app, _run_native
from repro.hardware.cluster import cori, local_cluster
from repro.mana import restart


def main() -> None:
    spec = get_app("gromacs")
    cfg = spec.default_config.scaled(n_steps=14)

    # GROMACS on Cori: 8 ranks over 4 nodes, 2 per node, Cray MPICH/Aries.
    src = cori(4)
    t_full = _run_native(src, spec, cfg, n_ranks=8, ranks_per_node=2)
    print(f"native GROMACS on {src.name}: {t_full*1e3:.2f} ms "
          f"({cfg.n_steps} MD steps)")

    job = _launch_mana_app(src, spec, cfg, 8, 2)
    ckpt, report = job.checkpoint_at(t_full / 2)
    print(f"checkpointed at the halfway mark: "
          f"{ckpt.total_bytes / (1 << 20):.0f} MB total, "
          f"{report.total_time:.2f} s")

    # Migrate: the same images restart under three target configurations.
    for label, dst, mpi, rpn in [
        ("Open MPI over InfiniBand, 2 nodes x 4 ranks",
         local_cluster(2, "infiniband"), "openmpi", 4),
        ("MPICH over TCP, 2 nodes x 4 ranks",
         local_cluster(2, "tcp"), "mpich", 4),
        ("MPICH single node, 8 ranks",
         local_cluster(1, "tcp"), "mpich", 8),
    ]:
        job2 = restart(ckpt, dst, spec.build(cfg), mpi=mpi, ranks_per_node=rpn)
        job2.run_to_completion()
        rep = job2.restart_report
        print(f"  -> {label}: restart {rep.total_time:.2f} s, "
              f"remaining run {(job2.engine.now - rep.total_time)*1e3:.2f} ms, "
              f"checksum {job2.states[0]['checksum']:.6f}")

    # The full Figure-9 comparison with native baselines:
    print()
    print(render_table(fig9_cross_cluster_migration()))


if __name__ == "__main__":
    main()
