#!/usr/bin/env python
"""§3.5 reproduced: switch a long-running job from the production Cray MPI
to a custom-compiled *debug* MPICH across a checkpoint-restart, to debug an
issue occurring deep into a run — without rerunning from the start.

Run:  python examples/switch_mpi_debugging.py
"""

from repro.apps import get_app
from repro.harness.experiments import _launch_mana_app, _run_native
from repro.hardware.cluster import cori
from repro.mana import restart
from repro.mana.virtualize import HandleKind


def main() -> None:
    spec = get_app("gromacs")
    cfg = spec.default_config.scaled(n_steps=16)
    cluster = cori(4)

    # A production run under Cray MPI...
    job = _launch_mana_app(cluster, spec, cfg, 8, 2)
    print(f"production run: {job.world.impl.name} {job.world.impl.version} "
          f"over {job.world.fabric.name}")
    t_full = _run_native(cluster, spec, cfg, 8, 2)
    ckpt, _ = job.checkpoint_at(0.55 * t_full)  # "a checkpoint taken 55s in"
    world_comm_real = job.runtimes[0].table.resolve(HandleKind.COMM, 1)
    print(f"checkpoint taken; real MPI_COMM_WORLD handle was "
          f"{world_comm_real.handle:#x} — the application only ever saw "
          f"virtual handle 1")

    # ...restarted under a debug build of MPICH 3.3 for instrumentation.
    job2 = restart(ckpt, cluster, spec.build(cfg), mpi="mpich-debug",
                   ranks_per_node=2)
    job2.run_to_completion()
    impl = job2.world.impl
    new_real = job2.runtimes[0].table.resolve(HandleKind.COMM, 1)
    print(f"restarted under {impl.name} {impl.version} "
          f"(debug build: {impl.debug})")
    print(f"the lower half was rebuilt from scratch: real handle "
          f"{new_real.handle:#x} belongs to the new library instance; the "
          f"application still holds virtual handle 1 throughout")
    print(f"debug build per-call overhead: {impl.call_overhead*1e9:.0f} ns "
          f"vs production 90 ns — the run is slower but fully instrumented")
    print(f"final checksum: {job2.states[0]['checksum']:.6f} "
          f"(identical to what the production run would have produced)")

    # Prove that last claim:
    ref = _launch_mana_app(cluster, spec, cfg, 8, 2)
    ref.run_to_completion()
    assert ref.states[0]["checksum"] == job2.states[0]["checksum"]
    print("verified against an uninterrupted production run.")


if __name__ == "__main__":
    main()
