#!/usr/bin/env python
"""A tour of the ``repro.faults`` subsystem: fault models, injection,
detection, and the automated checkpoint/restart loop.

Three scenarios on the same iterative solver:

1. random node failures from per-node exponential (MTBF) processes —
   the run survives every crash and reports its efficiency;
2. rack-correlated failures — one power-supply fault takes out a whole
   rack, and the survivors absorb the displaced ranks;
3. transient faults (network brownout, slow I/O) — nothing dies, the
   job just runs slower through the rough patch.

Run:  python examples/resilience.py
"""

import numpy as np

from repro.faults import (
    CorrelatedFaults,
    ExponentialNodeFaults,
    NetworkDegradation,
    ScriptedFaults,
    SlowIO,
    run_resilient,
)
from repro.hardware.cluster import make_cluster
from repro.mana.autockpt import young_daly_interval
from repro.mpilib import SUM
from repro.mprog import Call, Compute, Loop, Program, Seq
from repro.simtime.rng import RngStreams


def make_program(rank, size):
    """A 40-step allreduce solver, ~0.5 s of compute per step."""

    def init(s):
        s["x"] = np.array([float(s["rank"] + 1)])
        s["acc"] = 0.0

    def solve(s, api):
        return api.allreduce(s["x"], SUM)

    def update(s):
        s["acc"] += float(s["sum"][0])
        s["x"] = s["x"] * 0.5 + 1.0

    return Program(Seq(
        Compute(init),
        Loop(40, Seq(
            Call(solve, store="sum"),
            Compute(update, cost=0.5),
        )),
    ), name="solver")


def scenario_random_failures() -> None:
    """Exponential MTBF faults; checkpoint at the Young/Daly period."""
    cluster = make_cluster("alpha", 8)
    mtbf_system = 8.0  # seconds — brutal, to make failures certain
    model = ExponentialNodeFaults(
        [n.node_id for n in cluster.nodes],
        mtbf_seconds=mtbf_system * len(cluster.nodes),
        rng=RngStreams(seed=7),
    )
    interval = young_daly_interval(mtbf_system, ckpt_cost_seconds=0.15)
    run = run_resilient(cluster, make_program, n_ranks=8,
                        interval=interval, faults=model, max_restarts=50)
    print(f"[random]     {len(run.failures)} failures, "
          f"{run.recoveries} recoveries, lost {run.lost_work_total:.1f}s, "
          f"efficiency {run.efficiency:.1%} "
          f"(interval {interval:.2f}s from Young/Daly)")
    assert run.completed


def scenario_rack_failure() -> None:
    """One node fault cascades to its whole rack (shared PSU)."""
    cluster = make_cluster("beta", 8)
    racks = cluster.rack_groups(rack_size=4)
    base = ExponentialNodeFaults(
        [n.node_id for n in cluster.nodes],
        mtbf_seconds=15.0 * len(cluster.nodes),
        rng=RngStreams(seed=0),
    )
    model = CorrelatedFaults(base, racks)
    run = run_resilient(cluster, make_program, n_ranks=8, ranks_per_node=1,
                        interval=3.0, faults=model, max_restarts=50)
    worst = max(run.failures, key=lambda f: len(f.nodes))
    print(f"[correlated] failure took out nodes {worst.nodes} (a whole "
          f"rack); survivors absorbed the ranks — efficiency "
          f"{run.efficiency:.1%}")
    assert run.completed and len(worst.nodes) == 4


def scenario_transient_faults() -> None:
    """Brownouts hurt throughput but kill nothing: zero restarts."""
    cluster = make_cluster("gamma", 8)
    faults = ScriptedFaults([
        NetworkDegradation(time=3.0, duration=5.0,
                           alpha_mult=10.0, beta_mult=4.0),
        SlowIO(time=10.0, duration=6.0, factor=8.0),
    ])
    run = run_resilient(cluster, make_program, n_ranks=8,
                        interval=3.0, faults=faults)
    print(f"[transient]  network brownout + slow I/O: 0 node failures, "
          f"{run.recoveries} restarts, but the run stretched to "
          f"{run.wallclock:.1f}s vs {run.reference_time:.1f}s clean "
          f"(efficiency {run.efficiency:.1%})")
    assert run.completed and not run.failures
    assert run.wallclock > run.reference_time


def main() -> None:
    """Run all three scenarios."""
    scenario_random_failures()
    scenario_rack_failure()
    scenario_transient_faults()


if __name__ == "__main__":
    main()
