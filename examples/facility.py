#!/usr/bin/env python
"""The facility view: one shared cluster, a queued job mix, and checkpoint/
restart as the scheduler's tool — preempt a running tenant with an induced
coordinated checkpoint (Algorithm 2), hand its nodes to an urgent job, and
resume it later from its images with bit-identical state.

Run:  python examples/facility.py
"""

from repro.conformance.oracles import state_fingerprint
from repro.facility import Facility, JobSpec, generate_jobs
from repro.harness import render_table
from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana

MB = 1 << 20


def machine(name: str, nodes: int):
    return make_cluster(name, nodes, cores_per_node=16,
                        interconnect="aries", default_mpi="craympich")


def main() -> None:
    # --- 1. a loss-free preemption, verified against a solo run ----------
    long_job = JobSpec(job_id=0, app="gromacs", n_ranks=4, n_nodes=2,
                       n_steps=30, mem_bytes=64 * MB)
    urgent = JobSpec(job_id=1, app="gromacs", n_ranks=2, n_nodes=2,
                     n_steps=5, priority=1, submit_time=0.004,
                     mem_bytes=64 * MB)

    fac = Facility(machine("demo", 2), scheduler="fifo", seed=5)
    lo, hi = fac.submit_all([long_job, urgent])
    rep = fac.run()
    print(f"urgent job waited {hi.queue_wait * 1e3:.1f} ms; the long job was "
          f"checkpoint-preempted {lo.preemptions}x and restarted "
          f"{lo.restarts}x")

    # the same app run alone, never preempted, must end in the same state
    solo_cluster = machine("solo", 2)
    from repro.apps import get_app
    spec = get_app("gromacs")
    cfg = spec.default_config.scaled(n_steps=30, mem_bytes=64 * MB)
    solo = launch_mana(solo_cluster, spec.build(cfg), 4)
    solo.start()
    solo.engine.run()
    golden = state_fingerprint(solo.states)
    verdict = "MATCH" if lo.fingerprint == golden else "MISMATCH"
    print(f"preempted-job fingerprint vs solo golden run: {verdict}")
    print()

    # --- 2. a whole priority workload on one 8-node machine --------------
    cluster = machine("facility", 8)
    fac = Facility(cluster, scheduler="backfill", seed=7)
    fac.submit_all(generate_jobs("priority", 30, seed=7))
    rep = fac.run()
    print(rep.summary())
    print()
    print(render_table(rep.job_table(limit=8)))


if __name__ == "__main__":
    main()
