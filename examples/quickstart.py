#!/usr/bin/env python
"""Quickstart: run an MPI application under MANA, checkpoint it, kill the
world, and restart it on a *different* MPI implementation and network.

This is the paper's headline capability in ~60 lines: MPI-agnostic,
network-agnostic transparent checkpointing.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.hardware.cluster import make_cluster
from repro.mana import launch_mana, restart
from repro.mpilib import SUM
from repro.mprog import Call, Compute, Loop, Program, Seq


# --- 1. An MPI application: iterative allreduce with local updates. -------
#     Programs are node trees so that MANA can serialize the continuation
#     (the stand-in for saving the stack in real MANA).

def make_program(rank: int, size: int) -> Program:
    def init(s):
        s["x"] = np.array([float(s["rank"] + 1)])
        s["history"] = []

    def global_sum(s, api):
        return api.allreduce(s["x"], SUM)

    def update(s):
        s["history"].append(float(s["sum"][0]))
        s["x"] = s["x"] * 0.9 + 1.0

    return Program(Seq(
        Compute(init),
        Loop(8, Seq(
            Call(global_sum, store="sum"),
            Compute(update, cost=0.5),   # 0.5 simulated seconds of work
        )),
    ), name="quickstart")


def main() -> None:
    # --- 2. Launch on a Cori-like cluster: Cray MPICH over Aries. ---------
    cori_like = make_cluster("cori", 2, interconnect="aries",
                             default_mpi="craympich")
    job = launch_mana(cori_like, make_program, n_ranks=4, ranks_per_node=2)
    job.start()
    print(f"launched 4 ranks under MANA on {cori_like.name} "
          f"({job.world.impl.name}/{job.world.fabric.name})")

    # --- 3. Checkpoint mid-run (the app continues afterwards). ------------
    ckpt, report = job.checkpoint_at(2.2)
    print(f"checkpoint: {report.total_time:.3f}s total "
          f"(drain {report.drain_time*1e3:.2f}ms, write {report.write_time:.3f}s, "
          f"protocol rounds {report.rounds})")
    print(f"images: {ckpt.n_ranks} x "
          f"{ckpt.images[0].size_bytes / (1 << 20):.0f} MB, upper half only")

    # --- 4. Restart elsewhere: Open MPI over InfiniBand, new layout. ------
    other = make_cluster("local", 4, interconnect="infiniband",
                         default_mpi="openmpi")
    job2 = restart(ckpt, other, make_program, ranks_per_node=1)
    job2.run_to_completion()
    print(f"restarted on {other.name} ({job2.world.impl.name}/"
          f"{job2.world.fabric.name}), 1 rank/node")
    print(f"restart took {job2.restart_report.total_time:.3f}s "
          f"(read {job2.restart_report.read_time:.3f}s)")

    # --- 5. Verify: identical results to an uninterrupted run. ------------
    reference = launch_mana(cori_like, make_program, n_ranks=4,
                            ranks_per_node=2).start()
    reference.run_to_completion()
    for r in range(4):
        assert job2.states[r]["history"] == reference.states[r]["history"]
    print("verified: restarted results identical to an uninterrupted run")
    print("history rank 0:", job2.states[0]["history"])


if __name__ == "__main__":
    main()
